package sim

import (
	"testing"

	"boxes/internal/difftest"
	"boxes/internal/obs"
	"boxes/internal/wbox"
)

// smokeSeeds are the fixed seeds every scheme must survive in CI (the
// `make sim-smoke` budget). Keep in sync with cmd/boxsim -smoke.
var smokeSeeds = []int64{1, 2, 3}

// TestSimSmoke is the required CI gate: every scheme, the balanced and
// the delete-heavy mixes, fixed seeds, faults on.
func TestSimSmoke(t *testing.T) {
	for _, dcfg := range difftest.Configs() {
		for _, mix := range []string{MixMixed, MixChurn} {
			for _, seed := range smokeSeeds {
				cfg := Config{Seed: seed, Scheme: dcfg.Name, Mix: mix, Ops: 150, FaultRate: 0.08}
				rep, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", dcfg.Name, mix, seed, err)
				}
				if rep.Failure != nil {
					t.Errorf("%s/%s seed %d: %v", dcfg.Name, mix, seed, rep.Failure)
				}
			}
		}
	}
}

// TestSimAdversarialMixes runs the lower-bound-style insertion patterns:
// hammering the document front and bisecting the newest gap, the
// sequences that force worst-case relabeling.
func TestSimAdversarialMixes(t *testing.T) {
	for _, scheme := range []string{"wbox", "wbox-o", "bbox", "bbox-o", "naive-8"} {
		for _, mix := range []string{MixAdvFront, MixAdvBisect} {
			cfg := Config{Seed: 7, Scheme: scheme, Mix: mix, Ops: 200, FaultRate: 0.05}
			rep, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", scheme, mix, err)
			}
			if rep.Failure != nil {
				t.Errorf("%s/%s: %v", scheme, mix, rep.Failure)
			}
		}
	}
}

// TestSimZooMixes runs the workload-zoo trace mixes — zipfian-skewed
// positions and steady-state tombstone churn — under composed fault
// schedules on every scheme.
func TestSimZooMixes(t *testing.T) {
	for _, scheme := range []string{"wbox", "wbox-o", "bbox", "bbox-o", "naive-8"} {
		for _, mix := range []string{MixZipf, MixSteady} {
			cfg := Config{Seed: 9, Scheme: scheme, Mix: mix, Ops: 200, FaultRate: 0.06}
			rep, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", scheme, mix, err)
			}
			if rep.Failure != nil {
				t.Errorf("%s/%s: %v", scheme, mix, rep.Failure)
			}
		}
	}
}

// TestSimZipfTraceIsSkewed checks the zipf mix's generation-time shape:
// the positional operands concentrate on low ranks (a hot region) instead
// of the uniform spread of the other mixes, and the skew survives in the
// events themselves so minimized subsequences keep it.
func TestSimZipfTraceIsSkewed(t *testing.T) {
	trace, err := GenTrace(Config{Seed: 5, Mix: MixZipf, Ops: 400})
	if err != nil {
		t.Fatal(err)
	}
	ops, low := 0, 0
	for _, ev := range trace {
		if ev.Kind != EvOp {
			continue
		}
		ops++
		if ev.A < 8 {
			low++
		}
	}
	if ops == 0 {
		t.Fatal("no ops generated")
	}
	// Uniform Uint32 operands would land below 8 with probability ~2e-9;
	// zipf at skew 1.2 concentrates nearly half the mass there (measured
	// 49% at this seed; a third is comfortably beyond chance).
	if low*3 < ops {
		t.Fatalf("zipf mix not skewed: %d/%d operands in the hot region", low, ops)
	}
}

// TestSimSteadyTraceBalances checks the steady mix emits inserts and
// element deletes in near-equal proportion with no subtree deletes, the
// shape that holds a document at fixed size while accumulating
// tombstones.
func TestSimSteadyTraceBalances(t *testing.T) {
	trace, err := GenTrace(Config{Seed: 5, Mix: MixSteady, Ops: 600})
	if err != nil {
		t.Fatal(err)
	}
	var ins, del int
	for _, ev := range trace {
		if ev.Kind != EvOp {
			continue
		}
		switch ev.Op {
		case KInsertBefore, KInsertFirst:
			ins++
		case KDeleteElement:
			del++
		case KDeleteSubtree, KBatch:
			t.Fatalf("steady mix emitted %s", ev.Op)
		}
	}
	if ins == 0 || del == 0 {
		t.Fatalf("steady mix degenerate: %d inserts, %d deletes", ins, del)
	}
	ratio := float64(ins) / float64(del)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("steady mix unbalanced: %d inserts vs %d deletes", ins, del)
	}
}

// TestSimReplayIsByteIdentical proves the determinism contract: two runs
// of the same seed produce the same trace digest AND the same execution
// digest — every returned LID, every restart, every boundary resolution
// identical.
func TestSimReplayIsByteIdentical(t *testing.T) {
	cfg := Config{Seed: 42, Scheme: "wbox", Mix: MixMixed, Ops: 250, FaultRate: 0.12}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceDigest != b.TraceDigest {
		t.Fatalf("trace digests differ: %s vs %s", a.TraceDigest, b.TraceDigest)
	}
	if a.ExecDigest != b.ExecDigest {
		t.Fatalf("execution digests differ: %s vs %s", a.ExecDigest, b.ExecDigest)
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
	// An explicit RunTrace of the generated trace is the same run.
	trace, err := GenTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunTrace(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	if c.ExecDigest != a.ExecDigest {
		t.Fatalf("RunTrace(GenTrace) digest %s differs from Run digest %s", c.ExecDigest, a.ExecDigest)
	}
	if a.Stats.Restarts == 0 || a.Stats.Ops == 0 {
		t.Fatalf("replay test exercised nothing: %+v", a.Stats)
	}
}

// TestSimFsyncFailureRecovers checks the fsyncgate contract end to end: a
// history peppered with failed fsyncs must poison-and-recover every time,
// end oracle-equal, and keep committing ops after each recovery.
func TestSimFsyncFailureRecovers(t *testing.T) {
	var trace []Event
	for i := 0; i < 60; i++ {
		if i%10 == 4 {
			trace = append(trace, Event{Kind: EvFault, Fault: FSyncFail, Delay: uint32(i % 6)})
		}
		trace = append(trace, Event{Kind: EvOp, Op: KInsertBefore, A: uint32(i * 13), B: uint32(i)})
	}
	for _, scheme := range []string{"wbox", "bbox"} {
		cfg := Config{Seed: 1, Scheme: scheme, Ops: len(trace)}
		rep, err := RunTrace(cfg, trace)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failure != nil {
			t.Fatalf("%s: %v", scheme, rep.Failure)
		}
		if rep.Stats.Restarts == 0 {
			t.Fatalf("%s: no restart despite injected fsync failures: %+v", scheme, rep.Stats)
		}
		if rep.Stats.Ops < 50 {
			t.Fatalf("%s: store did not keep committing after fsync-failure recoveries: %+v", scheme, rep.Stats)
		}
	}
}

// TestSimNoSpaceRecovers checks the ENOSPC contract end to end: full-disk
// write failures abort the op cleanly to the pre-op state (no read-only
// latch), the history continues, and the final state is oracle-equal.
func TestSimNoSpaceRecovers(t *testing.T) {
	var trace []Event
	for i := 0; i < 60; i++ {
		if i%7 == 3 {
			trace = append(trace, Event{Kind: EvFault, Fault: FNoSpace, Delay: uint32(i % 9)})
		}
		trace = append(trace, Event{Kind: EvOp, Op: KInsertBefore, A: uint32(i * 29), B: uint32(i >> 1)})
	}
	for _, scheme := range []string{"wbox", "naive-8"} {
		cfg := Config{Seed: 1, Scheme: scheme, Ops: len(trace)}
		rep, err := RunTrace(cfg, trace)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failure != nil {
			t.Fatalf("%s: %v", scheme, rep.Failure)
		}
		if rep.Stats.Aborts == 0 {
			t.Fatalf("%s: no clean abort despite injected ENOSPC faults: %+v", scheme, rep.Stats)
		}
		if rep.Stats.Ops < 45 {
			t.Fatalf("%s: store did not stay writable after ENOSPC aborts: %+v", scheme, rep.Stats)
		}
	}
}

// TestSimFindsKnownBug is the harness acceptance test of the issue: with
// the PR-4 W-BOX tombstone-stranded-rebuild bug deliberately
// re-introduced (wbox.HookStrandEmptyTree), the smoke seed budget must
// find a failing history, the minimizer must shrink it to at most 50
// events, and both the minimized trace and the original seed must replay
// the failure byte-identically.
func TestSimFindsKnownBug(t *testing.T) {
	wbox.HookStrandEmptyTree = true
	defer func() { wbox.HookStrandEmptyTree = false }()

	var (
		found *Report
		cfg   Config
	)
	for _, seed := range smokeSeeds {
		cfg = Config{Seed: seed, Scheme: "wbox", Mix: MixChurn, Ops: 150, FaultRate: 0.08}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failure != nil {
			found = rep
			break
		}
	}
	if found == nil {
		t.Fatalf("re-introduced bug not found within the smoke seed budget %v", smokeSeeds)
	}
	t.Logf("seed %d finds the bug: %v", cfg.Seed, found.Failure)

	// Replaying the seed reproduces the failure byte-identically.
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.Failure == nil || *again.Failure != *found.Failure {
		t.Fatalf("replay of seed %d differs: %v vs %v", cfg.Seed, again.Failure, found.Failure)
	}
	if again.ExecDigest != found.ExecDigest {
		t.Fatalf("replay of seed %d: exec digest %s, want %s", cfg.Seed, again.ExecDigest, found.ExecDigest)
	}

	// The minimizer shrinks the history to a handful of events.
	trace, err := GenTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := cfg
	mcfg.Metrics = obs.NewRegistry()
	mres, err := Minimize(mcfg, trace, found.Failure, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mres.Report.Failure == nil {
		t.Fatal("minimized trace does not fail")
	}
	if len(mres.Events) > 50 {
		t.Fatalf("minimized history has %d events, want <= 50 (from %d)", len(mres.Events), len(trace))
	}
	if in, out := mcfg.Metrics.Counter(obs.CtrSimMinimizeEventsIn), mcfg.Metrics.Counter(obs.CtrSimMinimizeEventsOut); in != uint64(len(trace)) || out != uint64(len(mres.Events)) {
		t.Fatalf("shrink-ratio counters: in=%d out=%d, want %d/%d", in, out, len(trace), len(mres.Events))
	}
	t.Logf("minimized %d -> %d events in %d runs: %v", len(trace), len(mres.Events), mres.Runs, mres.Report.Failure)

	// The minimized trace replays identically too.
	mrep, err := RunTrace(cfg, mres.Events)
	if err != nil {
		t.Fatal(err)
	}
	if mrep.Failure == nil || mrep.ExecDigest != mres.Report.ExecDigest {
		t.Fatalf("minimized trace replay diverged: %v digest %s, want %v digest %s",
			mrep.Failure, mrep.ExecDigest, mres.Report.Failure, mres.Report.ExecDigest)
	}

	// With the hook off, the same histories pass: the harness is
	// detecting the bug, not its own noise.
	wbox.HookStrandEmptyTree = false
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Failure != nil {
		t.Fatalf("seed %d fails even without the bug: %v", cfg.Seed, clean.Failure)
	}
	wbox.HookStrandEmptyTree = true
}

// TestSimTraceRoundTrip checks the trace artifact a CI failure uploads is
// sufficient to replay the run.
func TestSimTraceRoundTrip(t *testing.T) {
	cfg := Config{Seed: 11, Scheme: "bbox", Mix: MixMixed, Ops: 40, FaultRate: 0.1}
	trace, err := GenTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/trace.json"
	if err := SaveTrace(path, cfg, trace); err != nil {
		t.Fatal(err)
	}
	cfg2, trace2, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if TraceDigest(cfg2, trace2) != TraceDigest(cfg, trace) {
		t.Fatal("trace digest changed across save/load")
	}
	a, err := RunTrace(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrace(cfg2, trace2)
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecDigest != b.ExecDigest {
		t.Fatal("loaded trace executed differently")
	}
}

// TestSimCounters checks the sim_* observability counters move.
func TestSimCounters(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{Seed: 42, Scheme: "wbox", Mix: MixMixed, Ops: 250, FaultRate: 0.12, Metrics: reg}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure != nil {
		t.Fatal(rep.Failure)
	}
	if got := reg.Counter(obs.CtrSimHistories); got != 1 {
		t.Fatalf("sim_histories_total = %d, want 1", got)
	}
	if got := reg.Counter(obs.CtrSimOps); got != uint64(rep.Stats.Ops) {
		t.Fatalf("sim_ops_total = %d, want %d", got, rep.Stats.Ops)
	}
	if got := reg.Counter(obs.CtrSimRestarts); got != uint64(rep.Stats.Restarts) {
		t.Fatalf("sim_restarts_total = %d, want %d", got, rep.Stats.Restarts)
	}
	if rep.Stats.Faults > 0 {
		sum := reg.Counter(obs.CtrSimFaultsCrash) + reg.Counter(obs.CtrSimFaultsNoSpace) +
			reg.Counter(obs.CtrSimFaultsSyncFail) + reg.Counter(obs.CtrSimFaultsTransient) +
			reg.Counter(obs.CtrSimRedoCrashes)
		if sum == 0 {
			t.Fatal("faults injected but no sim_faults_* counter moved")
		}
	}
}
