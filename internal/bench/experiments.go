package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"boxes/internal/bbox"
	"boxes/internal/naive"
	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/reflog"
	"boxes/internal/wbox"
	"boxes/internal/xmlgen"
)

// RunConcentrated executes the concentrated-insertion workload over the
// full scheme matrix (Figures 5 and 6).
func RunConcentrated(cfg Config) ([]SchemeRun, error) {
	return RunUpdateWorkload(cfg, UpdateSchemes(cfg.NaiveKs), func(l order.Labeler, rec *Recorder) error {
		return Concentrated(l, rec, cfg.BaseElems, cfg.InsertElems)
	})
}

// RunScattered executes the scattered-insertion workload (Figure 7). The
// paper's Figure 7 highlights naive-1, whose gaps are too small even for
// evenly spread insertions, so k=1 is always included here.
func RunScattered(cfg Config) ([]SchemeRun, error) {
	ks := cfg.NaiveKs
	has1 := false
	for _, k := range ks {
		if k == 1 {
			has1 = true
		}
	}
	if !has1 {
		ks = append([]int{1}, ks...)
	}
	return RunUpdateWorkload(cfg, UpdateSchemes(ks), func(l order.Labeler, rec *Recorder) error {
		return Scattered(l, rec, cfg.BaseElems, cfg.InsertElems)
	})
}

// RunXMark executes the XMark document-order build-up (Figures 8 and 9).
func RunXMark(cfg Config) ([]SchemeRun, error) {
	return RunUpdateWorkload(cfg, UpdateSchemes(cfg.NaiveKs), func(l order.Labeler, rec *Recorder) error {
		rec.Skip = cfg.XMarkPrime
		return XMarkDocOrder(l, rec, cfg.XMarkElems, cfg.Seed)
	})
}

// Fig5 prints the amortized update cost under concentrated insertion.
func Fig5(w io.Writer, cfg Config) error {
	runs, err := RunConcentrated(cfg)
	if err != nil {
		return err
	}
	WriteAvgTable(w, fmt.Sprintf("Figure 5: amortized update cost, concentrated insertion (base=%d, inserts=%d)", cfg.BaseElems, cfg.InsertElems), runs)
	return nil
}

// Fig6 prints the update cost distribution under concentrated insertion.
func Fig6(w io.Writer, cfg Config) error {
	runs, err := RunConcentrated(cfg)
	if err != nil {
		return err
	}
	WriteCCDF(w, fmt.Sprintf("Figure 6: distribution of update cost, concentrated insertion (base=%d, inserts=%d)", cfg.BaseElems, cfg.InsertElems), runs)
	return nil
}

// Fig7 prints the amortized update cost under scattered insertion.
func Fig7(w io.Writer, cfg Config) error {
	runs, err := RunScattered(cfg)
	if err != nil {
		return err
	}
	WriteAvgTable(w, fmt.Sprintf("Figure 7: amortized update cost, scattered insertion (base=%d, inserts=%d)", cfg.BaseElems, cfg.InsertElems), runs)
	return nil
}

// Fig8 prints the amortized update cost under the XMark build-up.
func Fig8(w io.Writer, cfg Config) error {
	runs, err := RunXMark(cfg)
	if err != nil {
		return err
	}
	WriteAvgTable(w, fmt.Sprintf("Figure 8: amortized update cost, XMark insertion (elements=%d, primed=%d)", cfg.XMarkElems, cfg.XMarkPrime), runs)
	return nil
}

// Fig9 prints the update cost distribution under the XMark build-up.
func Fig9(w io.Writer, cfg Config) error {
	runs, err := RunXMark(cfg)
	if err != nil {
		return err
	}
	WriteCCDF(w, fmt.Sprintf("Figure 9: distribution of update cost, XMark insertion (elements=%d, primed=%d)", cfg.XMarkElems, cfg.XMarkPrime), runs)
	return nil
}

// QueryCost reproduces the in-text "Query performance" discussion of
// Section 7: per-scheme label lookup cost (including the LIDF
// indirection), start/end pair lookup cost, and tree heights.
func QueryCost(w io.Writer, cfg Config) error {
	specs := []SchemeSpec{WBoxSpec(), WBoxOSpec(), BBoxSpec(), BBoxOSpec(), NaiveSpec(16)}
	tags := xmlgen.XMark(cfg.XMarkElems, cfg.Seed).TagStream()
	// Elements whose start and end tags are far apart have their two
	// records on different leaves — the case W-BOX-O optimizes. Rank
	// elements by tag distance and keep the widest.
	startPos := make(map[int32]int)
	var wide []int32
	for i, t := range tags {
		if t.Start {
			startPos[t.Elem] = i
		} else if i-startPos[t.Elem] > 200 {
			wide = append(wide, t.Elem)
		}
	}
	fmt.Fprintf(w, "# Query performance: label lookup cost in I/Os (doc=%d elements, no caching)\n", len(tags)/2)
	fmt.Fprintf(w, "%-12s %7s %14s %13s %18s\n", "scheme", "height", "avg_lookup_io", "avg_pair_io", "avg_pair_io_wide")
	for _, spec := range specs {
		l, store, err := spec.New(cfg.BlockSize)
		if err != nil {
			return err
		}
		cfg.attach(spec.Name, store)
		var elems []order.ElemLIDs
		if err := cfg.instrument(spec.Name, store, obs.OpBulkLoad, func() error {
			var err error
			elems, err = l.BulkLoad(tags)
			return err
		}); err != nil {
			return fmt.Errorf("%s: %w", spec.Name, err)
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		const samples = 500
		store.ResetStats()
		for i := 0; i < samples; i++ {
			e := elems[rng.Intn(len(elems))]
			lid := e.Start
			if rng.Intn(2) == 0 {
				lid = e.End
			}
			if err := cfg.instrument(spec.Name, store, obs.OpLookup, func() error {
				if nl, ok := l.(*naive.Labeler); ok {
					_, err := nl.LookupBig(lid)
					return err
				}
				_, err := l.Lookup(lid)
				return err
			}); err != nil {
				return err
			}
		}
		single := float64(store.Stats().Total()) / samples
		store.ResetStats()
		for i := 0; i < samples; i++ {
			e := elems[rng.Intn(len(elems))]
			if wl, ok := l.(*wbox.Labeler); ok {
				if _, _, err := wl.LookupPair(e.Start, e.End); err != nil {
					return err
				}
				continue
			}
			if bl, ok := l.(*bbox.Labeler); ok {
				if _, _, err := bl.LookupPair(e.Start, e.End); err != nil {
					return err
				}
				continue
			}
			if nl, ok := l.(*naive.Labeler); ok {
				if _, err := nl.LookupBig(e.Start); err != nil {
					return err
				}
				if _, err := nl.LookupBig(e.End); err != nil {
					return err
				}
				continue
			}
			if _, err := l.Lookup(e.Start); err != nil {
				return err
			}
			if _, err := l.Lookup(e.End); err != nil {
				return err
			}
		}
		pair := float64(store.Stats().Total()) / samples
		pairWide := 0.0
		if len(wide) > 0 {
			store.ResetStats()
			n := 0
			for i := 0; i < samples; i++ {
				e := elems[wide[rng.Intn(len(wide))]]
				if wl, ok := l.(*wbox.Labeler); ok {
					if _, _, err := wl.LookupPair(e.Start, e.End); err != nil {
						return err
					}
				} else if bl, ok := l.(*bbox.Labeler); ok {
					if _, _, err := bl.LookupPair(e.Start, e.End); err != nil {
						return err
					}
				} else if nl, ok := l.(*naive.Labeler); ok {
					if _, err := nl.LookupBig(e.Start); err != nil {
						return err
					}
					if _, err := nl.LookupBig(e.End); err != nil {
						return err
					}
				} else {
					if _, err := l.Lookup(e.Start); err != nil {
						return err
					}
					if _, err := l.Lookup(e.End); err != nil {
						return err
					}
				}
				n++
			}
			pairWide = float64(store.Stats().Total()) / float64(n)
		}
		fmt.Fprintf(w, "%-12s %7d %14.2f %13.2f %18.2f\n", spec.Name, l.Height(), single, pair, pairWide)
	}
	return nil
}

// BulkVsElement reproduces the "Other findings" comparison of Section 7:
// inserting the concentrated subtree element-at-a-time versus with the
// bulk subtree-insert operation, for W-BOX and B-BOX (total I/Os).
func BulkVsElement(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "# Bulk vs element-at-a-time subtree insertion (base=%d, subtree=%d elements)\n", cfg.BaseElems, cfg.InsertElems)
	fmt.Fprintf(w, "%-12s %18s %14s %9s\n", "scheme", "element_total_io", "bulk_total_io", "speedup")
	for _, spec := range []SchemeSpec{WBoxSpec(), BBoxSpec()} {
		// Element at a time: the concentrated sequence itself.
		l1, store1, err := spec.New(cfg.BlockSize)
		if err != nil {
			return err
		}
		cfg.attach(spec.Name, store1)
		rec := NewRecorder(store1).Observe(cfg.Metrics, spec.Name, obs.OpInsert)
		if err := Concentrated(l1, rec, cfg.BaseElems, cfg.InsertElems); err != nil {
			return err
		}
		elementTotal := rec.Total()

		// Bulk: the same subtree inserted in one operation.
		l2, store2, err := spec.New(cfg.BlockSize)
		if err != nil {
			return err
		}
		cfg.attach(spec.Name, store2)
		var elems []order.ElemLIDs
		if err := cfg.instrument(spec.Name, store2, obs.OpBulkLoad, func() error {
			var err error
			elems, err = l2.BulkLoad(xmlgen.TwoLevel(cfg.BaseElems).TagStream())
			return err
		}); err != nil {
			return err
		}
		sub := xmlgen.TwoLevel(cfg.InsertElems).TagStream()
		store2.ResetStats()
		if err := cfg.instrument(spec.Name, store2, obs.OpSubtreeInsert, func() error {
			_, err := l2.InsertSubtreeBefore(elems[0].End, sub)
			return err
		}); err != nil {
			return err
		}
		bulkTotal := store2.Stats().Total()
		speedup := float64(elementTotal) / float64(bulkTotal)
		fmt.Fprintf(w, "%-12s %18d %14d %8.1fx\n", spec.Name, elementTotal, bulkTotal, speedup)
	}
	return nil
}

// LabelBits reproduces the label-length discussion: measured bits per
// label after the concentrated stress against the analytic bounds of
// Theorems 4.4 and 5.1 and the machine-word limit.
func LabelBits(w io.Writer, cfg Config) error {
	runs, err := RunConcentrated(cfg)
	if err != nil {
		return err
	}
	n := float64(2 * (cfg.BaseElems + cfg.InsertElems))
	logN := math.Log2(n)
	fmt.Fprintf(w, "# Label length in bits after concentrated insertion (N=%d labels)\n", int(n))
	fmt.Fprintf(w, "%-12s %9s %12s %16s\n", "scheme", "measured", "theory_bound", "fits_64bit_word")
	for _, r := range runs {
		bound := "-"
		switch r.Scheme {
		case "W-BOX", "W-BOX-O":
			p, err := wbox.NewParams(cfg.BlockSize, wbox.Basic, false)
			if err != nil {
				return err
			}
			a, k, b := float64(p.A), float64(p.K), float64(p.B)
			v := logN + 1 + math.Ceil(math.Log2(2+4/a)*(math.Log2(n/k)/math.Log2(a))+math.Log2(b))
			bound = fmt.Sprintf("%.0f", v)
		case "B-BOX", "B-BOX-O":
			logB := math.Log2(float64(cfg.BlockSize / 8))
			v := logN + 1 + math.Floor((logN-1)/(logB-1))
			bound = fmt.Sprintf("%.0f", v)
		}
		fits := "yes"
		if r.LabelBits > 64 {
			fits = "no"
		}
		fmt.Fprintf(w, "%-12s %9d %12s %16s\n", r.Scheme, r.LabelBits, bound, fits)
	}
	return nil
}

// CachingLogging reproduces Section 6 as an ablation (the paper gives no
// figure): a read-heavy workload over W-BOX and B-BOX under no caching,
// basic caching, and caching+logging with several log sizes, reporting the
// average lookup I/O and hit composition.
func CachingLogging(w io.Writer, cfg Config) error {
	type mode struct {
		name string
		k    int // -1 = off, 0 = basic, >0 = logged
	}
	modes := []mode{{"off", -1}, {"basic", 0}, {"log-8", 8}, {"log-64", 64}, {"log-512", 512}}
	tags := xmlgen.XMark(cfg.XMarkElems, cfg.Seed).TagStream()
	const lookupsPerUpdate = 50
	rounds := 200
	fmt.Fprintf(w, "# Section 6: lookup cost under caching/logging (doc=%d elements, %d lookups per update)\n", len(tags)/2, lookupsPerUpdate)
	fmt.Fprintf(w, "%-12s %-8s %14s %7s %9s %6s\n", "scheme", "mode", "avg_lookup_io", "fresh%", "replayed%", "miss%")
	for _, spec := range []SchemeSpec{WBoxSpec(), BBoxSpec()} {
		for _, m := range modes {
			l, store, err := spec.New(cfg.BlockSize)
			if err != nil {
				return err
			}
			cfg.attach(spec.Name, store)
			var elems []order.ElemLIDs
			if err := cfg.instrument(spec.Name, store, obs.OpBulkLoad, func() error {
				var err error
				elems, err = l.BulkLoad(tags)
				return err
			}); err != nil {
				return err
			}
			var cache *reflog.Cache
			if m.k >= 0 {
				cache = reflog.NewCache(l, reflog.NewLog(m.k))
				if cfg.Metrics != nil {
					cache.SetObserver(cfg.Metrics)
				}
			}
			rng := rand.New(rand.NewSource(cfg.Seed))
			// Build warm refs for a sample of labels.
			refs := make([]reflog.Ref, 1000)
			for i := range refs {
				e := elems[rng.Intn(len(elems))]
				lid := e.Start
				if rng.Intn(2) == 0 {
					lid = e.End
				}
				if cache != nil {
					r, err := cache.NewRef(lid)
					if err != nil {
						return err
					}
					refs[i] = r
				} else {
					refs[i] = reflog.Ref{LID: lid}
				}
			}
			// Interleaved phase: a steady update stream with reads in
			// between ages the caches the way a real workload would.
			for round := 0; round < rounds; round++ {
				anchor := elems[rng.Intn(len(elems))]
				if _, err := l.InsertElementBefore(anchor.End); err != nil {
					return err
				}
				for q := 0; q < lookupsPerUpdate; q++ {
					ref := &refs[rng.Intn(len(refs))]
					if cache != nil {
						if _, _, err := cache.Lookup(ref); err != nil {
							return err
						}
					} else if _, err := l.Lookup(ref.LID); err != nil {
						return err
					}
				}
			}
			// Measurement pass: lookups only, immediately after the last
			// update, so the averages isolate the read-side cost.
			store.ResetStats()
			n := 0
			for i := range refs {
				ref := &refs[i]
				if err := cfg.instrument(spec.Name, store, obs.OpLookup, func() error {
					if cache != nil {
						_, _, err := cache.Lookup(ref)
						return err
					}
					_, err := l.Lookup(ref.LID)
					return err
				}); err != nil {
					return err
				}
				n++
			}
			avg := float64(store.Stats().Total()) / float64(n)
			var fresh, repl, miss float64
			if cache != nil {
				tot := float64(cache.Fresh + cache.Replayed + cache.Misses)
				fresh = 100 * float64(cache.Fresh) / tot
				repl = 100 * float64(cache.Replayed) / tot
				miss = 100 * float64(cache.Misses) / tot
			} else {
				miss = 100
			}
			fmt.Fprintf(w, "%-12s %-8s %14.2f %7.1f %9.1f %6.1f\n", spec.Name, m.name, avg, fresh, repl, miss)
		}
	}
	return nil
}
