package bench

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func testSnapshot(avgIO float64) SnapshotFile {
	return SnapshotFile{
		Version:    snapshotVersion,
		Experiment: "concentrated",
		Params:     SnapshotParams{BlockSize: 512, BaseElems: 100, InsertElems: 50, Seed: 1},
		Schemes: []SchemeSnapshot{
			{
				Scheme: "W-BOX", Ops: 50, AvgIO: avgIO, TotalIO: uint64(avgIO * 50),
				MaxIO: 20, P99IO: 10, OpsPerSec: 1000, LatencyP50Ns: 100, LatencyP99Ns: 900,
				Height: 2, LabelBits: 32,
				Gauges: map[string]float64{`boxes_tree_height{scheme="W-BOX"}`: 2},
			},
			{Scheme: "B-BOX", Ops: 50, AvgIO: 3, TotalIO: 150, MaxIO: 8, P99IO: 6, Height: 2},
		},
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testSnapshot(4)
	path, err := WriteSnapshotFile(dir, want)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_concentrated.json" {
		t.Errorf("path = %s", path)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestDiffFlagsSyntheticRegression(t *testing.T) {
	baseline := testSnapshot(4)
	current := testSnapshot(8) // 2x the I/O cost
	current.Schemes[0].P99IO = 30
	regs, err := Diff(baseline, current, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	byMetric := map[string]Regression{}
	for _, r := range regs {
		if r.Scheme != "W-BOX" {
			t.Errorf("unexpected regression in %s: %v", r.Scheme, r)
		}
		byMetric[r.Metric] = r
	}
	avg, ok := byMetric["avg_io_per_op"]
	if !ok {
		t.Fatal("2x avg_io_per_op not flagged")
	}
	if avg.Ratio != 2 {
		t.Errorf("ratio = %v, want 2", avg.Ratio)
	}
	if _, ok := byMetric["p99_io"]; !ok {
		t.Error("3x p99_io not flagged")
	}
	if _, ok := byMetric["max_io"]; ok {
		t.Error("unchanged max_io flagged")
	}
}

func TestDiffWithinThresholdPasses(t *testing.T) {
	baseline := testSnapshot(4)
	current := testSnapshot(4.5) // 12.5% worse, threshold 25%
	regs, err := Diff(baseline, current, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regressions within threshold: %v", regs)
	}
}

func TestDiffWallClockOnlyOnRequest(t *testing.T) {
	baseline := testSnapshot(4)
	current := testSnapshot(4)
	current.Schemes[0].OpsPerSec = 100 // 10x slower wall clock, same I/O
	current.Schemes[0].LatencyP99Ns = 9000

	regs, err := Diff(baseline, current, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("wall-clock metrics compared without -wall: %v", regs)
	}
	regs, err = Diff(baseline, current, 0.25, true)
	if err != nil {
		t.Fatal(err)
	}
	metrics := map[string]bool{}
	for _, r := range regs {
		metrics[r.Metric] = true
	}
	if !metrics["ops_per_sec"] || !metrics["latency_p99_ns"] {
		t.Errorf("wall-clock regressions not flagged: %v", regs)
	}
}

func TestDiffRejectsIncomparableSnapshots(t *testing.T) {
	baseline := testSnapshot(4)
	current := testSnapshot(4)
	current.Params.Seed = 99
	if _, err := Diff(baseline, current, 0.25, false); err == nil {
		t.Error("parameter mismatch not rejected")
	}
	current = testSnapshot(4)
	current.Experiment = "scattered"
	if _, err := Diff(baseline, current, 0.25, false); err == nil {
		t.Error("experiment mismatch not rejected")
	}
	// A scheme present on only one side is fine: the matrix may grow.
	current = testSnapshot(4)
	current.Schemes = current.Schemes[:1]
	if _, err := Diff(baseline, current, 0.25, false); err != nil {
		t.Errorf("shrunk scheme matrix rejected: %v", err)
	}
}

// TestWriteBenchSnapshots runs the real (tiny) workloads end to end and
// checks the emitted files diff cleanly against themselves.
func TestWriteBenchSnapshots(t *testing.T) {
	dir := t.TempDir()
	cfg := Default()
	cfg.BlockSize = 512
	cfg.BaseElems = 200
	cfg.InsertElems = 60
	cfg.XMarkElems = 150
	cfg.XMarkPrime = 50
	cfg.NaiveKs = []int{4}
	paths, err := WriteBenchSnapshots(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 6 {
		t.Fatalf("wrote %d snapshots, want 6: %v", len(paths), paths)
	}
	sawWALGauge := false
	for _, path := range paths {
		s, err := ReadSnapshotFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Schemes) == 0 {
			t.Fatalf("%s: no schemes", path)
		}
		for _, sc := range s.Schemes {
			if sc.Ops <= 0 || sc.TotalIO == 0 {
				t.Errorf("%s: %s: empty measurements: %+v", path, sc.Scheme, sc)
			}
			if len(sc.Gauges) == 0 {
				t.Errorf("%s: %s: no final structural gauges", path, sc.Scheme)
			}
			for key := range sc.Gauges {
				if strings.HasPrefix(key, "pager_wal_") {
					sawWALGauge = true
				}
			}
		}
		if regs, err := Diff(s, s, 0.25, true); err != nil || len(regs) != 0 {
			t.Errorf("%s: self-diff: regs=%v err=%v", path, regs, err)
		}
	}
	if !sawWALGauge {
		t.Error("durable snapshot carries no pager_wal_* gauges for the diff gate")
	}
}
