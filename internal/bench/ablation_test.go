package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestRelaxedFanoutOutput(t *testing.T) {
	cfg := tinyConfig()
	cfg.BlockSize = 1024
	cfg.BaseElems = 3000
	cfg.InsertElems = 400
	var buf bytes.Buffer
	if err := RelaxedFanout(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var b2, b4 float64
	for _, line := range strings.Split(out, "\n") {
		var name string
		var avg float64
		var total uint64
		if n, _ := fmt.Sscanf(line, "%s %f %d", &name, &avg, &total); n == 3 {
			switch name {
			case "B/2":
				b2 = avg
			case "B/4":
				b4 = avg
			}
		}
	}
	if b2 == 0 || b4 == 0 {
		t.Fatalf("missing rows:\n%s", out)
	}
	// The boundary-churn workload must cost strictly more with the
	// standard minimum fan-out (that is the point of the Section 5
	// relaxation).
	if b2 <= b4 {
		t.Errorf("B/2 avg %.2f not above B/4 avg %.2f", b2, b4)
	}
}

func TestBlockSizeSweepOutput(t *testing.T) {
	cfg := tinyConfig()
	cfg.BaseElems = 2000
	cfg.InsertElems = 300
	var buf bytes.Buffer
	if err := BlockSizeSweep(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		var name string
		var bs int
		var avg float64
		if n, _ := fmt.Sscanf(line, "%s %d %f", &name, &bs, &avg); n == 3 {
			rows++
			if avg <= 0 {
				t.Errorf("%s @%d: avg %v", name, bs, avg)
			}
		}
	}
	if rows != 8 { // 4 block sizes x 2 schemes
		t.Fatalf("rows = %d, want 8:\n%s", rows, out)
	}
}
