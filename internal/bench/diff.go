package bench

import (
	"fmt"
	"reflect"
	"strings"
)

// gatedGaugePrefixes are snapshot gauge families benchdiff treats as cost
// metrics: higher is worse, and a rise beyond the threshold is a
// regression. pager_wal_* gauges only appear in snapshots taken over a
// WAL-enabled FileBackend (the durable experiment), where
// pager_wal_write_amplification is the contract: the committed baseline
// holds it near 2x, so the default 25% threshold fails any change that
// pushes physical-write overhead materially past that. boxes_amortized_*
// are the cost-ledger ratios (relabeled records per insert, I/Os per op,
// splits per insert): a rise past the baseline means a scheme's amortized
// bound degraded — the exact regression the paper's analysis forbids.
var gatedGaugePrefixes = []string{"pager_wal_", "boxes_amortized_"}

func gaugeGated(key string) bool {
	for _, p := range gatedGaugePrefixes {
		if strings.HasPrefix(key, p) {
			return true
		}
	}
	return false
}

// Regression is one metric that got worse beyond the diff threshold.
type Regression struct {
	Scheme string  // which scheme regressed
	Metric string  // which metric
	Old    float64 // baseline value
	New    float64 // current value
	Ratio  float64 // new/old for cost metrics, old/new for throughput
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %.3g -> %.3g (%.2fx worse)", r.Scheme, r.Metric, r.Old, r.New, r.Ratio)
}

// Diff compares a current snapshot against a baseline and returns every
// metric that regressed by more than threshold (0.25 = 25% worse).
//
// The default comparison covers the deterministic I/O metrics — avg_io,
// p99_io, max_io, total_io — which are reproducible across machines: in
// the paper's cost model I/Os per op *is* throughput, so a committed
// baseline stays meaningful on any CI runner. With wallClock set, the
// machine-dependent ops/sec and p99 latency are compared too; only do that
// when both snapshots come from the same hardware.
//
// Schemes present in only one snapshot are ignored (the matrix may grow),
// but mismatched workload parameters are an error: those numbers are not
// comparable at any threshold.
func Diff(baseline, current SnapshotFile, threshold float64, wallClock bool) ([]Regression, error) {
	if baseline.Experiment != current.Experiment {
		return nil, fmt.Errorf("bench: diffing different experiments: %q vs %q", baseline.Experiment, current.Experiment)
	}
	if !reflect.DeepEqual(baseline.Params, current.Params) {
		return nil, fmt.Errorf("bench: workload parameters differ: baseline %+v vs current %+v", baseline.Params, current.Params)
	}
	base := make(map[string]SchemeSnapshot, len(baseline.Schemes))
	for _, s := range baseline.Schemes {
		base[s.Scheme] = s
	}
	var regs []Regression
	for _, cur := range current.Schemes {
		old, ok := base[cur.Scheme]
		if !ok {
			continue
		}
		costs := []struct {
			metric   string
			old, new float64
		}{
			{"avg_io_per_op", old.AvgIO, cur.AvgIO},
			{"p99_io", float64(old.P99IO), float64(cur.P99IO)},
			{"max_io", float64(old.MaxIO), float64(cur.MaxIO)},
			{"total_io", float64(old.TotalIO), float64(cur.TotalIO)},
		}
		if wallClock {
			costs = append(costs,
				struct {
					metric   string
					old, new float64
				}{"latency_p99_ns", float64(old.LatencyP99Ns), float64(cur.LatencyP99Ns)})
		}
		for _, c := range costs {
			// Higher is worse; a zero baseline can only regress to non-zero.
			if c.old > 0 && c.new > c.old*(1+threshold) {
				regs = append(regs, Regression{Scheme: cur.Scheme, Metric: c.metric, Old: c.old, New: c.new, Ratio: c.new / c.old})
			}
		}
		if wallClock && old.OpsPerSec > 0 && cur.OpsPerSec < old.OpsPerSec/(1+threshold) {
			// Lower is worse for throughput.
			regs = append(regs, Regression{Scheme: cur.Scheme, Metric: "ops_per_sec", Old: old.OpsPerSec, New: cur.OpsPerSec, Ratio: old.OpsPerSec / cur.OpsPerSec})
		}
		for key, oldVal := range old.Gauges {
			if !gaugeGated(key) || oldVal <= 0 {
				continue
			}
			if newVal, ok := cur.Gauges[key]; ok && newVal > oldVal*(1+threshold) {
				regs = append(regs, Regression{Scheme: cur.Scheme, Metric: key, Old: oldVal, New: newVal, Ratio: newVal / oldVal})
			}
		}
	}
	return regs, nil
}
