package bench

import (
	"fmt"

	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/xmlgen"
)

// Concentrated runs the paper's concentrated insertion sequence: after
// bulk loading a two-level base document, a subtree root is added as a
// child of the document root and element pairs are repeatedly "squeezed"
// into the centre of its growing child list — the adversarial pattern that
// breaks gap-based schemes. Every element insertion is recorded.
func Concentrated(l order.Labeler, rec *Recorder, baseElems, insertElems int) error {
	var elems []order.ElemLIDs
	if err := rec.Bracket(obs.OpBulkLoad, func() error {
		var err error
		elems, err = l.BulkLoad(xmlgen.TwoLevel(baseElems).TagStream())
		return err
	}); err != nil {
		return err
	}
	docRoot := elems[0]
	var sub order.ElemLIDs
	if err := rec.Do(func() error {
		var err error
		sub, err = l.InsertElementBefore(docRoot.End)
		return err
	}); err != nil {
		return fmt.Errorf("concentrated: subtree root: %w", err)
	}
	right := sub.End
	for inserted := 1; inserted < insertElems; inserted++ {
		if inserted%2 == 1 {
			// Left member of the pair: previous sibling of the current
			// centre.
			if err := rec.Do(func() error {
				_, err := l.InsertElementBefore(right)
				return err
			}); err != nil {
				return fmt.Errorf("concentrated: insert %d: %w", inserted, err)
			}
			continue
		}
		// Right member: also before the centre, becoming the new centre.
		var r order.ElemLIDs
		if err := rec.Do(func() error {
			var err error
			r, err = l.InsertElementBefore(right)
			return err
		}); err != nil {
			return fmt.Errorf("concentrated: insert %d: %w", inserted, err)
		}
		right = r.Start
	}
	return nil
}

// Scattered runs the contrasting sequence of Section 7: the same base
// document, with insertions spread evenly across all of its children (each
// new element becomes a previous sibling of a distinct existing child).
func Scattered(l order.Labeler, rec *Recorder, baseElems, insertElems int) error {
	var elems []order.ElemLIDs
	if err := rec.Bracket(obs.OpBulkLoad, func() error {
		var err error
		elems, err = l.BulkLoad(xmlgen.TwoLevel(baseElems).TagStream())
		return err
	}); err != nil {
		return err
	}
	children := elems[1:] // the root's children, in document order
	if len(children) == 0 {
		return fmt.Errorf("scattered: base document has no children")
	}
	for i := 0; i < insertElems; i++ {
		// Even spread: child index advances by a fixed stride through
		// the document.
		anchor := children[(i*len(children))/insertElems].Start
		if err := rec.Do(func() error {
			_, err := l.InsertElementBefore(anchor)
			return err
		}); err != nil {
			return fmt.Errorf("scattered: insert %d: %w", i, err)
		}
	}
	return nil
}

// XMarkDocOrder builds an XMark-shaped document element-at-a-time in
// document order of start tags (each element arrives as the last child of
// its parent), the realistic build-up workload of Section 7. rec.Skip
// should be set to the priming prefix length.
func XMarkDocOrder(l order.Labeler, rec *Recorder, totalElems int, seed int64) error {
	tree := xmlgen.XMark(totalElems, seed)
	lidOf := make(map[*xmlgen.Node]order.ElemLIDs, tree.Elements())
	var insertErr error
	tree.Preorder(func(n, parent *xmlgen.Node, _ int) {
		if insertErr != nil {
			return
		}
		if parent == nil {
			insertErr = rec.Do(func() error {
				e, err := l.InsertFirstElement()
				lidOf[n] = e
				return err
			})
			return
		}
		anchor := lidOf[parent].End
		insertErr = rec.Do(func() error {
			e, err := l.InsertElementBefore(anchor)
			lidOf[n] = e
			return err
		})
	})
	return insertErr
}

// RunUpdateWorkload runs one insertion workload across a scheme matrix,
// returning per-scheme results. The workload callback receives a fresh
// labeler and recorder.
func RunUpdateWorkload(cfg Config, specs []SchemeSpec, workload func(order.Labeler, *Recorder) error) ([]SchemeRun, error) {
	var out []SchemeRun
	for _, spec := range specs {
		l, store, err := spec.New(cfg.BlockSize)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		// Each scheme gets its own registry unless the caller aggregates
		// into a shared one (-metrics): the cost ledger and heat maps are
		// per-registry, and a private registry keeps every scheme's
		// amortized ratios cleanly separated in the snapshot.
		sc := cfg
		if sc.Metrics == nil {
			sc.Metrics = obs.NewRegistry()
		}
		sc.attach(spec.Name, store)
		rec := NewRecorder(store).Observe(sc.Metrics, spec.Name, obs.OpInsert)
		if err := workload(l, rec); err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		run := SchemeRun{
			Scheme:    spec.Name,
			AvgIO:     rec.Avg(),
			TotalIO:   rec.Total(),
			MaxIO:     rec.Max(),
			P99IO:     rec.IOPercentile(0.99),
			Ops:       rec.N(),
			Height:    l.Height(),
			LabelBits: l.LabelBits(),
			Dist:      rec.CCDF(),
			OpsPerSec: rec.OpsPerSec(),
			P50Ns:     rec.LatencyPercentile(0.50),
			P99Ns:     rec.LatencyPercentile(0.99),
		}
		// Final structural health, walked synchronously now that the
		// workload is done (the stores are single-writer, so the runner
		// never registers live collectors).
		if c, ok := l.(obs.Collector); ok {
			run.Gauges = obs.WithLabel(c.CollectGauges(), "scheme", spec.Name)
		}
		// Final amortized ratios from the cost ledger (scheme label is
		// already attached), so benchdiff can gate the paper's bounds.
		run.Gauges = append(run.Gauges, sc.Metrics.AmortizedGauges(spec.Name)...)
		out = append(out, run)
	}
	return out, nil
}
