// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 7). Each experiment drives the
// labeling schemes through a workload while recording the block-I/O cost
// of every operation, then reports averages (the "amortized update cost"
// figures) and cost distributions (the CCDF figures).
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"boxes/internal/bbox"
	"boxes/internal/naive"
	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/pager"
	"boxes/internal/wbox"
)

// Config holds the experiment parameters. The paper's scale (2,000,000
// base elements + 500,000 insertions; XMark with 336,242 elements primed by
// 200,000) is Default().Scale(100).
type Config struct {
	BlockSize   int
	BaseElems   int   // elements in the two-level base document
	InsertElems int   // elements inserted by the update experiments
	XMarkElems  int   // document size for the XMark experiment
	XMarkPrime  int   // insertions excluded from XMark measurements
	Seed        int64 // XMark generator seed
	NaiveKs     []int // naive-k variants to include

	// Metrics, when non-nil, aggregates every scheme instance's
	// measurements (structural counters, I/O histograms) across the whole
	// run, so a benchmark process can expose one /metrics endpoint.
	Metrics *obs.Registry
}

// attach routes a freshly created scheme store into the run's registry.
func (c Config) attach(name string, store *pager.Store) {
	if c.Metrics == nil {
		return
	}
	store.SetObserver(c.Metrics)
	c.Metrics.SetScheme(name)
}

// instrument brackets fn as one operation of kind op in the run's registry,
// charging it the store's I/O delta. With no registry it just runs fn.
func (c Config) instrument(scheme string, store *pager.Store, op obs.Op, fn func() error) error {
	if c.Metrics == nil {
		return fn()
	}
	st := store.Stats()
	ctx := c.Metrics.Begin(scheme, op, st.Reads, st.Writes)
	err := fn()
	st = store.Stats()
	c.Metrics.End(ctx, st.Reads, st.Writes, err)
	return err
}

// Default returns the laptop-scale configuration (1/100 of the paper's).
func Default() Config {
	return Config{
		BlockSize:   pager.DefaultBlockSize,
		BaseElems:   20000,
		InsertElems: 5000,
		XMarkElems:  3362,
		XMarkPrime:  2000,
		Seed:        1,
		NaiveKs:     []int{4, 16, 64, 256},
	}
}

// Scale multiplies the workload sizes by f (Scale(100) reproduces the
// paper's sizes).
func (c Config) Scale(f int) Config {
	c.BaseElems *= f
	c.InsertElems *= f
	c.XMarkElems *= f
	c.XMarkPrime *= f
	return c
}

// SchemeSpec names a labeling scheme and knows how to instantiate it —
// either over its own in-memory store (New, what the paper's experiments
// use) or over a caller-provided store (NewOn, what the durable
// file-backed experiment uses).
type SchemeSpec struct {
	Name  string
	New   func(blockSize int) (order.Labeler, *pager.Store, error)
	NewOn func(store *pager.Store, blockSize int) (order.Labeler, error)
}

// memSpec builds a SchemeSpec whose New allocates a fresh MemStore and
// delegates to newOn.
func memSpec(name string, newOn func(store *pager.Store, bs int) (order.Labeler, error)) SchemeSpec {
	return SchemeSpec{
		Name:  name,
		NewOn: newOn,
		New: func(bs int) (order.Labeler, *pager.Store, error) {
			store := pager.NewMemStore(bs)
			l, err := newOn(store, bs)
			return l, store, err
		},
	}
}

// WBoxSpec is the basic W-BOX.
func WBoxSpec() SchemeSpec {
	return memSpec("W-BOX", func(store *pager.Store, bs int) (order.Labeler, error) {
		p, err := wbox.NewParams(bs, wbox.Basic, false)
		if err != nil {
			return nil, err
		}
		return wbox.New(store, p)
	})
}

// WBoxOSpec is W-BOX-O (pair-optimized leaves).
func WBoxOSpec() SchemeSpec {
	return memSpec("W-BOX-O", func(store *pager.Store, bs int) (order.Labeler, error) {
		p, err := wbox.NewParams(bs, wbox.PairOptimized, false)
		if err != nil {
			return nil, err
		}
		return wbox.New(store, p)
	})
}

// BBoxSpec is the basic B-BOX.
func BBoxSpec() SchemeSpec {
	return memSpec("B-BOX", func(store *pager.Store, bs int) (order.Labeler, error) {
		p, err := bbox.NewParams(bs, false, false)
		if err != nil {
			return nil, err
		}
		return bbox.New(store, p)
	})
}

// BBoxOSpec is B-BOX-O (ordinal labeling support).
func BBoxOSpec() SchemeSpec {
	return memSpec("B-BOX-O", func(store *pager.Store, bs int) (order.Labeler, error) {
		p, err := bbox.NewParams(bs, true, false)
		if err != nil {
			return nil, err
		}
		return bbox.New(store, p)
	})
}

// NaiveSpec is naive-k.
func NaiveSpec(k int) SchemeSpec {
	return memSpec(fmt.Sprintf("naive-%d", k), func(store *pager.Store, bs int) (order.Labeler, error) {
		return naive.New(store, naive.Config{K: k})
	})
}

// UpdateSchemes is the scheme matrix of the update-cost figures.
func UpdateSchemes(naiveKs []int) []SchemeSpec {
	specs := []SchemeSpec{BBoxSpec(), BBoxOSpec(), WBoxSpec(), WBoxOSpec()}
	for _, k := range naiveKs {
		specs = append(specs, NaiveSpec(k))
	}
	return specs
}

// Recorder measures the block-I/O cost of individual operations.
type Recorder struct {
	store *pager.Store
	Skip  int // operations to exclude (the XMark priming prefix)

	reg       *obs.Registry
	scheme    string
	schemeIdx int // the scheme's ledger row in reg
	op        obs.Op

	seen     int
	costs    []uint32
	total    uint64
	durs     []int64 // wall time per recorded op, nanoseconds
	totalDur int64
}

// NewRecorder wraps store.
func NewRecorder(store *pager.Store) *Recorder { return &Recorder{store: store} }

// Observe additionally records every Do into reg as an operation of kind
// op (typically OpInsert for the update workloads). Returns r for chaining.
func (r *Recorder) Observe(reg *obs.Registry, scheme string, op obs.Op) *Recorder {
	r.reg, r.scheme, r.op = reg, scheme, op
	r.schemeIdx = reg.SchemeIndex(scheme)
	return r
}

// Do runs op and records its I/O cost and wall time (unless still in the
// skip prefix). The recorder keeps its own per-op durations because the
// registry's histograms are shared across every scheme in a run; per-scheme
// p50/p99 must come from here. With a registry attached the op's wall time
// is also attributed by phase: the pager records block_read/block_write
// (and WAL commit) under the writer-op row, and whatever the pager did not
// claim lands in the op's structure phase.
func (r *Recorder) Do(op func() error) error {
	before := r.store.Stats()
	ctx := r.reg.Begin(r.scheme, r.op, before.Reads, before.Writes)
	r.reg.SetWriterCell(r.schemeIdx, r.op)
	phBefore := r.store.PhaseStats()
	start := time.Now()
	err := op()
	elapsed := time.Since(start)
	r.reg.ClearWriterOp()
	after := r.store.Stats()
	r.reg.End(ctx, after.Reads, after.Writes, err)
	if r.reg != nil {
		if resid := int64(elapsed) - r.store.PhaseStats().Sub(phBefore).Total(); resid > 0 {
			r.reg.ObservePhase(r.op, obs.PhaseStructure, time.Duration(resid))
		}
	}
	if err != nil {
		return err
	}
	r.seen++
	if r.seen <= r.Skip {
		return nil
	}
	d := after.Sub(before).Total()
	r.costs = append(r.costs, uint32(d))
	r.total += d
	r.durs = append(r.durs, int64(elapsed))
	r.totalDur += int64(elapsed)
	return nil
}

// Bracket runs fn and records it into the registry as one operation of
// kind op, without entering the workload's cost distribution. Used for the
// setup phases (bulk loads) that the figures exclude.
func (r *Recorder) Bracket(op obs.Op, fn func() error) error {
	before := r.store.Stats()
	ctx := r.reg.Begin(r.scheme, op, before.Reads, before.Writes)
	r.reg.SetWriterCell(r.schemeIdx, op)
	phBefore := r.store.PhaseStats()
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	r.reg.ClearWriterOp()
	after := r.store.Stats()
	r.reg.End(ctx, after.Reads, after.Writes, err)
	if r.reg != nil {
		if resid := int64(elapsed) - r.store.PhaseStats().Sub(phBefore).Total(); resid > 0 {
			r.reg.ObservePhase(op, obs.PhaseStructure, time.Duration(resid))
		}
	}
	return err
}

// N reports the number of recorded operations.
func (r *Recorder) N() int { return len(r.costs) }

// Total reports the summed I/O of recorded operations.
func (r *Recorder) Total() uint64 { return r.total }

// Avg reports the amortized cost (I/Os per recorded operation).
func (r *Recorder) Avg() float64 {
	if len(r.costs) == 0 {
		return 0
	}
	return float64(r.total) / float64(len(r.costs))
}

// Max reports the largest individual cost.
func (r *Recorder) Max() uint64 {
	var m uint32
	for _, c := range r.costs {
		if c > m {
			m = c
		}
	}
	return uint64(m)
}

// OpsPerSec reports the recorded operations' wall-clock throughput.
func (r *Recorder) OpsPerSec() float64 {
	if r.totalDur <= 0 {
		return 0
	}
	return float64(len(r.durs)) / (float64(r.totalDur) / 1e9)
}

// LatencyPercentile returns the p-th percentile (0 < p <= 1) of recorded
// per-op wall times, in nanoseconds.
func (r *Recorder) LatencyPercentile(p float64) int64 {
	if len(r.durs) == 0 {
		return 0
	}
	sorted := append([]int64(nil), r.durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[percentileIndex(len(sorted), p)]
}

// IOPercentile returns the p-th percentile of recorded per-op I/O costs.
func (r *Recorder) IOPercentile(p float64) uint64 {
	if len(r.costs) == 0 {
		return 0
	}
	sorted := append([]uint32(nil), r.costs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return uint64(sorted[percentileIndex(len(sorted), p)])
}

// percentileIndex maps percentile p to an index into a sorted sample of n
// (nearest-rank method).
func percentileIndex(n int, p float64) int {
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// CCDFPoint is one point of a cost distribution: the fraction of
// operations whose cost strictly exceeds Cost.
type CCDFPoint struct {
	Cost      uint64
	FracAbove float64
}

// CCDF returns the complementary cumulative distribution of recorded
// costs, one point per distinct cost, ascending — the form of Figures 6
// and 9.
func (r *Recorder) CCDF() []CCDFPoint {
	if len(r.costs) == 0 {
		return nil
	}
	sorted := append([]uint32(nil), r.costs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := float64(len(sorted))
	var out []CCDFPoint
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		out = append(out, CCDFPoint{Cost: uint64(sorted[i]), FracAbove: float64(len(sorted)-j) / n})
		i = j
	}
	return out
}

// SchemeRun is one scheme's outcome on one workload.
type SchemeRun struct {
	Scheme    string
	AvgIO     float64
	TotalIO   uint64
	MaxIO     uint64
	P99IO     uint64
	Ops       int
	Height    int
	LabelBits int
	Dist      []CCDFPoint

	// Wall-clock measurements (machine-dependent, unlike the I/O columns).
	OpsPerSec float64
	P50Ns     int64
	P99Ns     int64

	// Gauges holds the scheme's structural health at workload end (walked
	// synchronously after the last operation), scheme label included.
	Gauges []obs.GaugeValue

	// Phases attributes the workload's wall time by latency phase, keyed
	// "row.phase" (e.g. "insert.block_write", "wal.fsync"). Populated by the
	// experiments that thread a registry through the run (durable, group).
	Phases map[string]PhaseSummary
}

// PhaseSummary is one op-phase's latency contribution over a workload.
type PhaseSummary struct {
	Count   uint64 `json:"count"`
	TotalNs uint64 `json:"total_ns"`
	P50Ns   uint64 `json:"p50_ns"`
	P99Ns   uint64 `json:"p99_ns"`
}

// PhaseSummaries flattens the phase-histogram delta between two registry
// snapshots into "row.phase" keyed summaries (empty phases omitted).
func PhaseSummaries(before, after obs.Snapshot) map[string]PhaseSummary {
	out := make(map[string]PhaseSummary)
	for row, phases := range after.Phases {
		for ph, h := range phases {
			var old obs.HistSnapshot
			if m := before.Phases[row]; m != nil {
				old = m[ph]
			}
			d := h.Sub(old)
			n := d.Total()
			if n == 0 {
				continue
			}
			out[row+"."+ph] = PhaseSummary{
				Count:   n,
				TotalNs: d.Sum,
				P50Ns:   d.Quantile(0.50),
				P99Ns:   d.Quantile(0.99),
			}
		}
	}
	return out
}

// WriteAvgTable prints the "amortized update cost" form of a figure.
func WriteAvgTable(w io.Writer, title string, runs []SchemeRun) {
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintf(w, "%-12s %12s %12s %8s %7s %10s\n", "scheme", "avg_io/op", "total_io", "max_io", "height", "label_bits")
	for _, r := range runs {
		fmt.Fprintf(w, "%-12s %12.2f %12d %8d %7d %10d\n", r.Scheme, r.AvgIO, r.TotalIO, r.MaxIO, r.Height, r.LabelBits)
	}
}

// WriteCCDF prints the distribution form of a figure: for each scheme the
// fraction of operations exceeding each cost (log-log in the paper).
func WriteCCDF(w io.Writer, title string, runs []SchemeRun) {
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintf(w, "%-12s %10s %14s\n", "scheme", "cost>", "frac_ops")
	for _, r := range runs {
		for _, p := range decimate(r.Dist, 24) {
			fmt.Fprintf(w, "%-12s %10d %14.6f\n", r.Scheme, p.Cost, p.FracAbove)
		}
	}
}

// decimate thins a CCDF to at most n points while keeping endpoints.
func decimate(pts []CCDFPoint, n int) []CCDFPoint {
	if len(pts) <= n {
		return pts
	}
	out := make([]CCDFPoint, 0, n)
	step := float64(len(pts)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, pts[int(float64(i)*step+0.5)])
	}
	return out
}
