package bench

import (
	"fmt"
	"io"

	"boxes/internal/bbox"
	"boxes/internal/order"
	"boxes/internal/pager"
	"boxes/internal/xmlgen"
)

// RelaxedFanout reproduces the Section 5 discussion of the B/4 minimum
// fan-out: with the standard B/2 minimum, insert/delete churn at an
// occupancy boundary thrashes (rounds pay a merge and a split); with B/4
// the same rounds touch no structural operation. Getting the thrash to
// manifest needs two ingredients the paper's sketch leaves implicit: the
// whole leaf neighbourhood must sit at minimum occupancy (otherwise
// borrowing from a non-minimal sibling absorbs the oscillation), and the
// churn amplitude must exceed the slack the grind leaves behind.
func RelaxedFanout(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "# Section 5 ablation: B-BOX minimum fan-out B/2 vs B/4 under insert/delete thrashing\n")
	fmt.Fprintf(w, "%-10s %12s %12s\n", "min_fanout", "avg_io/op", "total_io")
	for _, relaxed := range []bool{false, true} {
		store := pager.NewMemStore(cfg.BlockSize)
		cfg.attach("B-BOX", store)
		p, err := bbox.NewParams(cfg.BlockSize, false, relaxed)
		if err != nil {
			return err
		}
		l, err := bbox.New(store, p)
		if err != nil {
			return err
		}
		elems, err := l.BulkLoad(xmlgen.TwoLevel(cfg.BaseElems).TagStream())
		if err != nil {
			return err
		}
		// Grind a neighbourhood of leaves down to ~B/2 records each by
		// deleting every other element in a region: with the standard
		// minimum every leaf then sits at the underflow boundary and has
		// no spare records to lend, so each subsequent delete/insert
		// round crosses both boundaries (merge back to ~B, then split);
		// with the relaxed B/4 minimum the same occupancy is comfortable
		// and the rounds touch no structural operation.
		mid := cfg.BaseElems / 2
		region := 4000
		if region > cfg.BaseElems/4 {
			region = cfg.BaseElems / 4
		}
		if region < 16 {
			return fmt.Errorf("tfan: base document too small")
		}
		if mid%2 == 1 {
			mid-- // the grind skips even offsets from mid-region; keep mid on that grid
		}
		for i := mid - region; i < mid+region; i += 2 {
			if i == mid {
				continue
			}
			if err := l.Delete(elems[i].Start); err != nil {
				return err
			}
			if err := l.Delete(elems[i].End); err != nil {
				return err
			}
		}
		// Push the anchor's leaf just below the standard minimum: with
		// min B/2 it settles by merging into a near-full leaf (its
		// ground-down siblings have nothing to lend), parking the base
		// state right at both boundaries; with min B/4 nothing happens.
		for _, i := range []int{mid - 1, mid + 1} {
			if err := l.Delete(elems[i].Start); err != nil {
				return err
			}
			if err := l.Delete(elems[i].End); err != nil {
				return err
			}
		}
		anchor := elems[mid].Start
		// Amplitude of 4 elements (8 records): large enough to cross the
		// B/2 underflow and overflow boundaries every round regardless of
		// the few records of slack the grind leaves in the anchor leaf.
		const residents = 4
		insert := func() ([]order.ElemLIDs, error) {
			live := make([]order.ElemLIDs, 0, residents)
			for j := 0; j < residents; j++ {
				e, err := l.InsertElementBefore(anchor)
				if err != nil {
					return nil, err
				}
				live = append(live, e)
			}
			return live, nil
		}
		live, err := insert()
		if err != nil {
			return err
		}
		rec := NewRecorder(store)
		rounds := cfg.InsertElems / residents
		for i := 0; i < rounds; i++ {
			if err := rec.Do(func() error {
				for _, e := range live {
					if err := l.Delete(e.Start); err != nil {
						return err
					}
					if err := l.Delete(e.End); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				return err
			}
			if err := rec.Do(func() error {
				var err error
				live, err = insert()
				return err
			}); err != nil {
				return err
			}
		}
		name := "B/2"
		if relaxed {
			name = "B/4"
		}
		fmt.Fprintf(w, "%-10s %12.2f %12d\n", name, rec.Avg(), rec.Total())
	}
	return nil
}

// BlockSizeSweep measures how the block size (and therefore B, the number
// of labels per block) moves the update-cost tradeoff for the BOXes under
// concentrated insertion. Larger blocks mean flatter trees and rarer
// splits, but each split and relabel touches more bytes.
func BlockSizeSweep(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "# Ablation: block size sweep, concentrated insertion (base=%d, inserts=%d)\n", cfg.BaseElems, cfg.InsertElems)
	fmt.Fprintf(w, "%-12s %8s %12s %8s %7s\n", "scheme", "block", "avg_io/op", "max_io", "height")
	for _, bs := range []int{1024, 4096, 8192, 16384} {
		for _, spec := range []SchemeSpec{WBoxSpec(), BBoxSpec()} {
			l, store, err := spec.New(bs)
			if err != nil {
				return err
			}
			cfg.attach(spec.Name, store)
			rec := NewRecorder(store)
			if err := Concentrated(l, rec, cfg.BaseElems, cfg.InsertElems); err != nil {
				return err
			}
			fmt.Fprintf(w, "%-12s %8d %12.2f %8d %7d\n", spec.Name, bs, rec.Avg(), rec.Max(), l.Height())
		}
	}
	return nil
}
