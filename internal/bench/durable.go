package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"boxes/internal/obs"
	"boxes/internal/pager"
)

// RunDurable runs the concentrated insertion workload for every scheme
// over a real FileBackend with checksums and the write-ahead log enabled
// (fsyncs suppressed, so the I/O *pattern* is measured, not the device).
// Every labeling operation commits as one WAL transaction, exactly the
// durability mode core.Options.Durable uses, and the per-scheme gauges
// include the pager_wal_* family — most importantly
// pager_wal_write_amplification, the physical-bytes-per-logical-byte
// overhead benchdiff gates against the committed baseline.
func RunDurable(cfg Config) ([]SchemeRun, error) {
	dir, err := os.MkdirTemp("", "boxes-durable")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var out []SchemeRun
	for _, spec := range UpdateSchemes(cfg.NaiveKs) {
		run, err := runDurableScheme(dir, cfg, spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		out = append(out, run)
	}
	return out, nil
}

func runDurableScheme(dir string, cfg Config, spec SchemeSpec) (SchemeRun, error) {
	path := filepath.Join(dir, strings.ReplaceAll(spec.Name, "/", "_")+".box")
	fb, err := pager.CreateFileOpts(path, pager.FileOptions{BlockSize: cfg.BlockSize, NoSync: true})
	if err != nil {
		return SchemeRun{}, err
	}
	defer fb.Close()
	// Phase attribution needs a registry; give the run a private one when the
	// caller did not supply a shared one.
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	store := pager.NewStore(fb)
	cfg.attach(spec.Name, store)
	l, err := spec.NewOn(store, cfg.BlockSize)
	if err != nil {
		return SchemeRun{}, err
	}
	phBefore := cfg.Metrics.Snapshot()
	rec := NewRecorder(store).Observe(cfg.Metrics, spec.Name, obs.OpInsert)
	if err := Concentrated(l, rec, cfg.BaseElems, cfg.InsertElems); err != nil {
		return SchemeRun{}, err
	}
	run := SchemeRun{
		Scheme:    spec.Name,
		AvgIO:     rec.Avg(),
		TotalIO:   rec.Total(),
		MaxIO:     rec.Max(),
		P99IO:     rec.IOPercentile(0.99),
		Ops:       rec.N(),
		Height:    l.Height(),
		LabelBits: l.LabelBits(),
		Dist:      rec.CCDF(),
		OpsPerSec: rec.OpsPerSec(),
		P50Ns:     rec.LatencyPercentile(0.50),
		P99Ns:     rec.LatencyPercentile(0.99),
		Phases:    PhaseSummaries(phBefore, cfg.Metrics.Snapshot()),
	}
	if c, ok := l.(obs.Collector); ok {
		run.Gauges = obs.WithLabel(c.CollectGauges(), "scheme", spec.Name)
	}
	// The store-level gauges carry the durability costs (pager_wal_*).
	run.Gauges = append(run.Gauges, obs.WithLabel(store.CollectGauges(), "scheme", spec.Name)...)
	return run, nil
}

// Durable prints the durable-backend overhead table: per-scheme update
// cost over a WAL-enabled FileBackend plus the WAL's own I/O accounting.
func Durable(w io.Writer, cfg Config) error {
	runs, err := RunDurable(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Durable update cost (concentrated workload, FileBackend + WAL + checksums)\n")
	fmt.Fprintf(w, "base=%d inserts=%d block=%d\n\n", cfg.BaseElems, cfg.InsertElems, cfg.BlockSize)
	fmt.Fprintf(w, "%-10s %8s %8s %8s %10s %10s %8s\n",
		"scheme", "ops", "avg I/O", "p99 I/O", "WAL txns", "WAL MiB", "amp")
	for _, r := range runs {
		gauges := gaugeMap(r.Gauges)
		fmt.Fprintf(w, "%-10s %8d %8.2f %8d %10.0f %10.2f %8.2f\n",
			r.Scheme, r.Ops, r.AvgIO, r.P99IO,
			gaugeFor(gauges, "pager_wal_commits"),
			gaugeFor(gauges, "pager_wal_bytes")/(1<<20),
			gaugeFor(gauges, "pager_wal_write_amplification"))
	}
	return nil
}

func gaugeMap(gs []obs.GaugeValue) map[string]float64 {
	m := make(map[string]float64, len(gs))
	for _, g := range gs {
		m[g.Key()] = g.Value
	}
	return m
}

// gaugeFor finds a gauge by name prefix in a flattened key map (keys carry
// rendered labels, e.g. `pager_wal_commits{scheme="W-BOX"}`).
func gaugeFor(m map[string]float64, name string) float64 {
	for k, v := range m {
		if k == name || strings.HasPrefix(k, name+"{") {
			return v
		}
	}
	return 0
}
