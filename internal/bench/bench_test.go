package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"boxes/internal/order"
)

// tinyConfig keeps unit-test runs fast.
func tinyConfig() Config {
	return Config{
		BlockSize:   1024,
		BaseElems:   400,
		InsertElems: 120,
		XMarkElems:  400,
		XMarkPrime:  100,
		Seed:        1,
		NaiveKs:     []int{4, 16},
	}
}

func TestRecorder(t *testing.T) {
	spec := WBoxSpec()
	l, store, err := spec.New(1024)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(store)
	if _, err := l.BulkLoad(order.TagStreamFromPairs(50)); err != nil {
		t.Fatal(err)
	}
	rec.Skip = 2
	for i := 0; i < 5; i++ {
		if err := rec.Do(func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if rec.N() != 3 {
		t.Fatalf("recorded %d ops, want 3 after skip", rec.N())
	}
	if rec.Avg() != 0 || rec.Max() != 0 {
		t.Fatalf("no-op ops should cost 0: avg=%v max=%v", rec.Avg(), rec.Max())
	}
}

func TestCCDFIsMonotone(t *testing.T) {
	r := &Recorder{costs: []uint32{1, 1, 3, 7, 7, 7, 20}, total: 46}
	pts := r.CCDF()
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	prev := 1.1
	for _, p := range pts {
		if p.FracAbove >= prev {
			t.Fatalf("CCDF not strictly decreasing: %+v", pts)
		}
		prev = p.FracAbove
	}
	if pts[len(pts)-1].FracAbove != 0 {
		t.Fatalf("last point must have 0 above: %+v", pts)
	}
}

func TestDecimateKeepsEndpoints(t *testing.T) {
	var pts []CCDFPoint
	for i := 0; i < 100; i++ {
		pts = append(pts, CCDFPoint{Cost: uint64(i), FracAbove: float64(100-i) / 100})
	}
	out := decimate(pts, 10)
	if len(out) != 10 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0].Cost != 0 || out[9].Cost != 99 {
		t.Fatalf("endpoints lost: %+v", out)
	}
}

func TestConcentratedShape(t *testing.T) {
	// The naive schemes' relabeling cost grows with the document size, so
	// the paper's headline separation needs a document that is large
	// relative to a block: 3000 base elements vs 1 KB blocks here.
	cfg := tinyConfig()
	cfg.BaseElems = 3000
	cfg.InsertElems = 600
	runs, err := RunConcentrated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SchemeRun{}
	for _, r := range runs {
		byName[r.Scheme] = r
		if r.Ops != cfg.InsertElems {
			t.Fatalf("%s recorded %d ops, want %d", r.Scheme, r.Ops, cfg.InsertElems)
		}
	}
	// The headline result: every BOX beats every naive under concentrated
	// insertion.
	for _, box := range []string{"W-BOX", "W-BOX-O", "B-BOX", "B-BOX-O"} {
		for _, nv := range []string{"naive-4", "naive-16"} {
			if byName[box].AvgIO >= byName[nv].AvgIO {
				t.Errorf("%s (%.2f) not cheaper than %s (%.2f) under concentrated insertion",
					box, byName[box].AvgIO, nv, byName[nv].AvgIO)
			}
		}
	}
	// B-BOX (no materialized labels) beats W-BOX (which must relabel).
	if byName["B-BOX"].AvgIO >= byName["W-BOX"].AvgIO {
		t.Errorf("B-BOX (%.2f) not cheaper than W-BOX (%.2f)", byName["B-BOX"].AvgIO, byName["W-BOX"].AvgIO)
	}
}

func TestScatteredShape(t *testing.T) {
	cfg := tinyConfig()
	runs, err := RunScattered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SchemeRun{}
	for _, r := range runs {
		byName[r.Scheme] = r
	}
	// Scattered insertion is the naive schemes' best case: naive-16 must
	// be cheap (constant-ish, no relabels to speak of).
	if byName["naive-16"].AvgIO > 6 {
		t.Errorf("naive-16 scattered avg = %.2f, expected small constant", byName["naive-16"].AvgIO)
	}
	// And the BOXes handle it gracefully too.
	if byName["B-BOX"].AvgIO > 10 {
		t.Errorf("B-BOX scattered avg = %.2f", byName["B-BOX"].AvgIO)
	}
}

func TestXMarkRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.NaiveKs = []int{16}
	runs, err := RunXMark(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.Ops <= 0 {
			t.Fatalf("%s recorded no ops", r.Scheme)
		}
		if r.AvgIO <= 0 {
			t.Fatalf("%s avg cost %v", r.Scheme, r.AvgIO)
		}
	}
}

func TestExperimentOutputs(t *testing.T) {
	cfg := tinyConfig()
	cfg.NaiveKs = []int{4}
	for name, f := range map[string]func(*bytes.Buffer) error{
		"fig5":   func(b *bytes.Buffer) error { return Fig5(b, cfg) },
		"fig6":   func(b *bytes.Buffer) error { return Fig6(b, cfg) },
		"fig7":   func(b *bytes.Buffer) error { return Fig7(b, cfg) },
		"fig8":   func(b *bytes.Buffer) error { return Fig8(b, cfg) },
		"fig9":   func(b *bytes.Buffer) error { return Fig9(b, cfg) },
		"tquery": func(b *bytes.Buffer) error { return QueryCost(b, cfg) },
		"tbulk":  func(b *bytes.Buffer) error { return BulkVsElement(b, cfg) },
		"tbits":  func(b *bytes.Buffer) error { return LabelBits(b, cfg) },
	} {
		var buf bytes.Buffer
		if err := f(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := buf.String()
		if !strings.HasPrefix(out, "# ") {
			t.Fatalf("%s output lacks title: %q", name, out[:40])
		}
		if strings.Count(out, "\n") < 3 {
			t.Fatalf("%s output too short:\n%s", name, out)
		}
	}
}

func TestBulkBeatsElementAtATime(t *testing.T) {
	cfg := tinyConfig()
	var buf bytes.Buffer
	if err := BulkVsElement(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	// Parse the speedups: both must exceed 1x by a wide margin.
	out := buf.String()
	if !strings.Contains(out, "x") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	parsed := 0
	for _, line := range strings.Split(out, "\n") {
		var scheme string
		var elem, bulk uint64
		var speed float64
		if n, _ := fmt.Sscanf(line, "%s %d %d %fx", &scheme, &elem, &bulk, &speed); n == 4 {
			parsed++
			if bulk >= elem {
				t.Errorf("%s: bulk (%d) not cheaper than element-at-a-time (%d)", scheme, bulk, elem)
			}
			if speed < 2 {
				t.Errorf("%s: speedup only %.1fx", scheme, speed)
			}
		}
	}
	if parsed != 2 {
		t.Fatalf("parsed %d result rows, want 2:\n%s", parsed, out)
	}
}
