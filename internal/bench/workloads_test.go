package bench

import (
	"testing"

	"boxes/internal/order"
	"boxes/internal/wbox"
	"boxes/internal/xmlgen"
)

// TestXMarkDocOrderBuildsTheDocument verifies that the element-at-a-time
// build-up driver produces exactly the generated tree's document order:
// after the run, span containment of the final labels must equal tree
// ancestorship.
func TestXMarkDocOrderBuildsTheDocument(t *testing.T) {
	spec := WBoxSpec()
	l, store, err := spec.New(1024)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(store)
	const n = 600
	const seed = 21
	if err := XMarkDocOrder(l, rec, n, seed); err != nil {
		t.Fatal(err)
	}
	tree := xmlgen.XMark(n, seed)
	if got := l.Count(); got != uint64(2*tree.Elements()) {
		t.Fatalf("count = %d, want %d", got, 2*tree.Elements())
	}

	// Rebuild the LID mapping by replaying the driver deterministically.
	l2, _, err := spec.New(1024)
	if err != nil {
		t.Fatal(err)
	}
	lidOf := map[*xmlgen.Node]order.ElemLIDs{}
	var insertErr error
	tree.Preorder(func(nd, parent *xmlgen.Node, _ int) {
		if insertErr != nil {
			return
		}
		if parent == nil {
			e, err := l2.InsertFirstElement()
			lidOf[nd] = e
			insertErr = err
			return
		}
		e, err := l2.InsertElementBefore(lidOf[parent].End)
		lidOf[nd] = e
		insertErr = err
	})
	if insertErr != nil {
		t.Fatal(insertErr)
	}
	if err := l2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	wl := l2.(*wbox.Labeler)
	// For sampled (ancestor, other) pairs, label containment must equal
	// tree ancestorship.
	nodes := tree.Nodes()
	var contains func(a, b *xmlgen.Node) bool
	contains = func(a, b *xmlgen.Node) bool {
		for _, c := range a.Children {
			if c == b || contains(c, b) {
				return true
			}
		}
		return false
	}
	for i := 0; i < len(nodes); i += 37 {
		for j := 1; j < len(nodes); j += 53 {
			a, b := nodes[i], nodes[j]
			if a == b {
				continue
			}
			sa, ea, err := wl.LookupPair(lidOf[a].Start, lidOf[a].End)
			if err != nil {
				t.Fatal(err)
			}
			sb, eb, err := wl.LookupPair(lidOf[b].Start, lidOf[b].End)
			if err != nil {
				t.Fatal(err)
			}
			labelSays := sa < sb && eb < ea
			treeSays := contains(a, b)
			if labelSays != treeSays {
				t.Fatalf("nodes %d,%d: labels say containment=%v, tree says %v", i, j, labelSays, treeSays)
			}
		}
	}
}

// TestConcentratedMatchesOracle verifies the squeeze driver produces a
// valid labeling end to end on a small instance.
func TestConcentratedMatchesOracle(t *testing.T) {
	for _, spec := range []SchemeSpec{WBoxSpec(), BBoxSpec(), NaiveSpec(8)} {
		t.Run(spec.Name, func(t *testing.T) {
			l, store, err := spec.New(1024)
			if err != nil {
				t.Fatal(err)
			}
			rec := NewRecorder(store)
			if err := Concentrated(l, rec, 200, 150); err != nil {
				t.Fatal(err)
			}
			if err := l.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if got := l.Count(); got != uint64(2*(200+150)) {
				t.Fatalf("count = %d, want %d", got, 2*(200+150))
			}
		})
	}
}
