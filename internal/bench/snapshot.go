package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// snapshotVersion is bumped whenever the BENCH_*.json schema changes shape.
const snapshotVersion = 1

// SnapshotParams records the workload parameters a snapshot was produced
// with, so a diff can refuse to compare apples to oranges.
type SnapshotParams struct {
	BlockSize   int   `json:"block_size"`
	BaseElems   int   `json:"base_elems"`
	InsertElems int   `json:"insert_elems"`
	XMarkElems  int   `json:"xmark_elems"`
	XMarkPrime  int   `json:"xmark_prime"`
	Seed        int64 `json:"seed"`
	NaiveKs     []int `json:"naive_ks,omitempty"`
}

func paramsOf(cfg Config) SnapshotParams {
	return SnapshotParams{
		BlockSize:   cfg.BlockSize,
		BaseElems:   cfg.BaseElems,
		InsertElems: cfg.InsertElems,
		XMarkElems:  cfg.XMarkElems,
		XMarkPrime:  cfg.XMarkPrime,
		Seed:        cfg.Seed,
		NaiveKs:     cfg.NaiveKs,
	}
}

// SchemeSnapshot is one scheme's measurements in a snapshot file. The I/O
// columns are deterministic (same binary + same params = same numbers);
// the wall-clock columns vary with the machine, which is why benchdiff
// compares I/O metrics by default.
type SchemeSnapshot struct {
	Scheme       string  `json:"scheme"`
	Ops          int     `json:"ops"`
	AvgIO        float64 `json:"avg_io_per_op"`
	TotalIO      uint64  `json:"total_io"`
	MaxIO        uint64  `json:"max_io"`
	P99IO        uint64  `json:"p99_io"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	LatencyP50Ns int64   `json:"latency_p50_ns"`
	LatencyP99Ns int64   `json:"latency_p99_ns"`
	Height       int     `json:"height"`
	LabelBits    int     `json:"label_bits"`
	// Gauges is the scheme's final structural health, flattened to
	// fully-qualified sample keys (name plus rendered labels).
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Phases attributes the workload's wall time by latency phase, keyed
	// "row.phase" (present for the registry-threaded experiments). The
	// values are wall-clock measurements, machine-dependent like ops/sec.
	Phases map[string]PhaseSummary `json:"phases,omitempty"`
}

// SnapshotFile is the on-disk schema of one BENCH_<experiment>.json.
type SnapshotFile struct {
	Version    int              `json:"version"`
	Experiment string           `json:"experiment"`
	Params     SnapshotParams   `json:"params"`
	Schemes    []SchemeSnapshot `json:"schemes"`
}

// SnapshotRuns converts one experiment's results into the snapshot form.
func SnapshotRuns(experiment string, cfg Config, runs []SchemeRun) SnapshotFile {
	s := SnapshotFile{
		Version:    snapshotVersion,
		Experiment: experiment,
		Params:     paramsOf(cfg),
	}
	for _, r := range runs {
		ss := SchemeSnapshot{
			Scheme:       r.Scheme,
			Ops:          r.Ops,
			AvgIO:        r.AvgIO,
			TotalIO:      r.TotalIO,
			MaxIO:        r.MaxIO,
			P99IO:        r.P99IO,
			OpsPerSec:    r.OpsPerSec,
			LatencyP50Ns: r.P50Ns,
			LatencyP99Ns: r.P99Ns,
			Height:       r.Height,
			LabelBits:    r.LabelBits,
			Phases:       r.Phases,
		}
		if len(r.Gauges) > 0 {
			ss.Gauges = make(map[string]float64, len(r.Gauges))
			for _, g := range r.Gauges {
				ss.Gauges[g.Key()] = g.Value
			}
		}
		s.Schemes = append(s.Schemes, ss)
	}
	return s
}

// SnapshotPath returns the conventional file name for an experiment's
// snapshot in dir: BENCH_<experiment>.json.
func SnapshotPath(dir, experiment string) string {
	return filepath.Join(dir, "BENCH_"+experiment+".json")
}

// WriteSnapshotFile writes s to SnapshotPath(dir, s.Experiment), creating
// dir if needed, and returns the path.
func WriteSnapshotFile(dir string, s SnapshotFile) (string, error) {
	if dir != "" && dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", err
		}
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "", err
	}
	path := SnapshotPath(dir, s.Experiment)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadSnapshotFile parses a BENCH_*.json file.
func ReadSnapshotFile(path string) (SnapshotFile, error) {
	var s SnapshotFile
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("bench: snapshot %s: %w", path, err)
	}
	if s.Version != snapshotVersion {
		return s, fmt.Errorf("bench: snapshot %s: unsupported version %d", path, s.Version)
	}
	return s, nil
}

// WriteBenchSnapshots runs the update experiments (concentrated,
// scattered, xmark, plus the WAL-enabled durable run) and writes one
// BENCH_<experiment>.json each into dir. It returns the paths written.
func WriteBenchSnapshots(dir string, cfg Config) ([]string, error) {
	type exp struct {
		name string
		run  func(Config) ([]SchemeRun, error)
	}
	exps := []exp{
		{"concentrated", RunConcentrated},
		{"scattered", RunScattered},
		{"xmark", RunXMark},
		{"durable", RunDurable},
		{"group", RunGroup},
		{"adv", RunAdversary},
	}
	var paths []string
	for _, e := range exps {
		runs, err := e.run(cfg)
		if err != nil {
			return paths, fmt.Errorf("bench: %s: %w", e.name, err)
		}
		path, err := WriteSnapshotFile(dir, SnapshotRuns(e.name, cfg, runs))
		if err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}
