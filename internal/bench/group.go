package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"boxes/internal/core"
	"boxes/internal/obs"
	"boxes/internal/pager"
)

// groupMode is one commit-path configuration of the group experiment.
type groupMode struct {
	name    string
	batch   int               // ApplyBatch size (1 = one op per call)
	dur     *pager.Durability // nil = per-op commit without group commit
	writers int               // 0/1 = sequential; >1 = concurrent SyncStore writers
}

// groupModes compares the per-operation-fsync baseline against WAL group
// commit at growing batch sizes. The mode names are the snapshot's
// "scheme" column, so benchdiff gates each mode independently. The final
// mode drives four concurrent writers through a SyncStore: a sequential
// writer commits one transaction per group (amortization comes only from
// the Every window), whereas concurrent writers queue transactions while
// the committer fsyncs, so the realized group size exceeds one and trace
// output shows several op spans resolved by a single fsync span.
func groupModes() []groupMode {
	return []groupMode{
		{"per-op", 1, nil, 1},
		{"group-1", 1, &pager.Durability{Every: 8}, 1},
		{"group-8", 8, &pager.Durability{Every: 8}, 1},
		{"group-32", 32, &pager.Durability{Every: 8}, 1},
		{"group-8x4", 8, &pager.Durability{Every: 8}, 4},
	}
}

// RunGroup measures durable insert throughput under the WAL commit modes:
// the per-op-fsync baseline, group commit with single-op transactions (the
// solo fast path), and multi-op ApplyBatch transactions under group
// commit. The workload is the concentrated insertion pattern driven
// through a durable core.Store over a real FileBackend with real fsyncs —
// the physical durability point group commit exists to amortize.
//
// Besides the standard columns, every row carries the per-op durability
// gauges the baseline gates: pager_wal_syncs_per_op (WAL fsyncs per
// insert; 1.0 in per-op mode, 1/N at batch size N), commits_per_op, and
// the realized mean group size.
func RunGroup(cfg Config) ([]SchemeRun, error) {
	dir, err := os.MkdirTemp("", "boxes-group")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var out []SchemeRun
	for _, mode := range groupModes() {
		run, err := runGroupMode(dir, cfg, mode)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mode.name, err)
		}
		out = append(out, run)
	}
	return out, nil
}

func runGroupMode(dir string, cfg Config, mode groupMode) (SchemeRun, error) {
	// Unlike the other durable experiments this one performs REAL fsyncs:
	// group commit exists to amortize the physical durability point, so
	// suppressing it would hide exactly the cost being measured.
	fb, err := pager.CreateFileOpts(filepath.Join(dir, mode.name+".box"),
		pager.FileOptions{BlockSize: cfg.BlockSize})
	if err != nil {
		return SchemeRun{}, err
	}
	defer fb.Close()
	st, err := core.Open(core.Options{
		Scheme:     core.SchemeBBox,
		BlockSize:  cfg.BlockSize,
		Backend:    fb,
		Durable:    true,
		Durability: mode.dur,
		Metrics:    cfg.Metrics,
	})
	if err != nil {
		return SchemeRun{}, err
	}
	reg := st.MetricsRegistry()

	// Base document outside the measured window.
	root, err := st.InsertFirstElement()
	if err != nil {
		return SchemeRun{}, err
	}
	statsBefore := st.Stats()
	walBefore := fb.WALStats()
	phBefore := reg.Snapshot()

	// Concentrated insertion: every new element lands before the document
	// root's end tag, issued in ApplyBatch transactions of the mode's size.
	ops := make([]core.Op, mode.batch)
	for i := range ops {
		ops[i] = core.Op{Kind: core.OpInsertBefore, LID: root.End}
	}
	inserts := 0
	startT := time.Now()
	if mode.writers > 1 {
		// Concurrent writers over a SyncStore: each op's deferred commit
		// ticket is waited outside the store lock, so while one writer
		// blocks on the durability point the others enqueue transactions
		// and the committer takes multi-transaction groups.
		ss := core.NewSyncStore(st)
		var wg sync.WaitGroup
		errs := make(chan error, mode.writers)
		share := cfg.InsertElems / mode.writers
		for w := 0; w < mode.writers; w++ {
			quota := share
			if w == 0 {
				quota += cfg.InsertElems % mode.writers
			}
			wg.Add(1)
			go func(quota int) {
				defer wg.Done()
				for done := 0; done < quota; {
					n := mode.batch
					if rem := quota - done; rem < n {
						n = rem
					}
					if _, err := ss.ApplyBatch(ops[:n]); err != nil {
						errs <- err
						return
					}
					done += n
				}
			}(quota)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return SchemeRun{}, err
		}
		inserts = cfg.InsertElems
	} else {
		for inserts < cfg.InsertElems {
			n := mode.batch
			if rem := cfg.InsertElems - inserts; rem < n {
				n = rem
			}
			if _, err := st.ApplyBatch(ops[:n]); err != nil {
				return SchemeRun{}, err
			}
			inserts += n
		}
	}
	elapsed := time.Since(startT)
	statsAfter := st.Stats()
	walAfter := fb.WALStats()
	phAfter := reg.Snapshot()
	phases := PhaseSummaries(phBefore, phAfter)

	// Commit-wait share: the fraction of measured batch latency spent in the
	// synchronous commit path (wal_commit) plus waiting for the durability
	// point (fsync_wait). This is the number group commit exists to shrink,
	// and benchdiff gates it against the committed baseline.
	var commitWaitNs uint64
	for _, key := range []string{"batch.wal_commit", "batch.fsync_wait"} {
		commitWaitNs += phases[key].TotalNs
	}
	commitShare := 0.0
	if before, after := phBefore.Ops["batch"].Latency.Sum, phAfter.Ops["batch"].Latency.Sum; after > before {
		denomNs := after - before
		if mode.writers > 1 {
			// SyncStore waits the deferred commit ticket outside the store
			// lock, so that wait sits outside the op-latency window; fold
			// it back in or the share overshoots 100%.
			denomNs += phases["batch.fsync_wait"].TotalNs
		}
		commitShare = float64(commitWaitNs) / float64(denomNs)
	}

	opsF := float64(inserts)
	totalIO := (statsAfter.Reads - statsBefore.Reads) + (statsAfter.Writes - statsBefore.Writes)
	syncs := walAfter.Syncs - walBefore.Syncs
	commits := walAfter.Commits - walBefore.Commits
	groupSize := 0.0
	if g := walAfter.GroupCommits; g > 0 {
		groupSize = float64(walAfter.GroupedTxns) / float64(g)
	}
	run := SchemeRun{
		Scheme:    mode.name,
		Ops:       inserts,
		AvgIO:     float64(totalIO) / opsF,
		TotalIO:   totalIO,
		Height:    st.Height(),
		LabelBits: st.LabelBits(),
		OpsPerSec: opsF / elapsed.Seconds(),
		Gauges: []obs.GaugeValue{
			obs.G("pager_wal_syncs_per_op", "WAL fsyncs per inserted element.", float64(syncs)/opsF, "scheme", mode.name),
			obs.G("pager_wal_commits_per_op", "WAL commit records per inserted element.", float64(commits)/opsF, "scheme", mode.name),
			obs.G("pager_wal_group_size_realized", "Mean transactions per flushed group.", groupSize, "scheme", mode.name),
			obs.G("phase_share_commit_wait", "Fraction of batch latency spent in wal_commit + fsync_wait.", commitShare, "scheme", mode.name),
		},
		Phases: phases,
	}
	return run, nil
}

// Group prints the group-commit throughput table: insert throughput and
// durability points per op for each commit mode.
func Group(w io.Writer, cfg Config) error {
	runs, err := RunGroup(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Durable insert throughput by commit mode (B-BOX, concentrated, FileBackend + WAL)\n")
	fmt.Fprintf(w, "inserts=%d block=%d  (real fsyncs: group commit amortizes the durability point)\n\n", cfg.InsertElems, cfg.BlockSize)
	fmt.Fprintf(w, "%-10s %8s %10s %10s %12s %12s %10s %9s\n",
		"mode", "ops", "ops/s", "avg I/O", "fsyncs/op", "commits/op", "group sz", "commit%")
	var base float64
	for _, r := range runs {
		gauges := gaugeMap(r.Gauges)
		speedup := ""
		if r.Scheme == "per-op" {
			base = r.OpsPerSec
		} else if base > 0 {
			speedup = fmt.Sprintf("  (%.1fx vs per-op)", r.OpsPerSec/base)
		}
		fmt.Fprintf(w, "%-10s %8d %10.0f %10.2f %12.3f %12.3f %10.2f %8.1f%%%s\n",
			r.Scheme, r.Ops, r.OpsPerSec, r.AvgIO,
			gaugeFor(gauges, "pager_wal_syncs_per_op"),
			gaugeFor(gauges, "pager_wal_commits_per_op"),
			gaugeFor(gauges, "pager_wal_group_size_realized"),
			100*gaugeFor(gauges, "phase_share_commit_wait"), speedup)
	}
	return nil
}
