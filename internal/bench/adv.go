package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"boxes/internal/order"
	"boxes/internal/workload"
)

// The adversarial experiment: every scheme of the difftest matrix under
// the adaptive BKS adversaries of internal/workload, next to its own
// seeded uniform-insert control. Each variant grows the document from
// empty by element inserts only — the amortized regime of the paper's
// bounds and of the lower-bound constructions — so the cost-ledger
// relabels-per-insert gauges of the three variants are directly
// comparable: same op class, same op count, no bulk-load costs mixed in.
// benchdiff gates the headline result of the lower-bound papers on the
// snapshot: under the bisection adversary naive-k's relabeling collapses
// to whole-document sweeps (absolute floor), while W-BOX and B-BOX stay
// within a constant factor of their uniform-control numbers (absolute
// ceilings) — the paper's "any insertion sequence" claim, made a CI gate.

// advNaiveK is the fixed-gap baseline the adversary attacks, matching the
// naive-8 world of the differential harness.
const advNaiveK = 8

// advVariant names one workload column of the adv experiment: run rows
// are "<scheme>" (bisect), "<scheme>/front", "<scheme>/uniform".
type advVariant struct {
	suffix string
	src    func(cfg Config) workload.Source
}

func advVariants() []advVariant {
	return []advVariant{
		{"", func(Config) workload.Source { return workload.NewBisect(64) }},
		{"/front", func(Config) workload.Source { return workload.NewFrontPack(64) }},
		{"/uniform", func(cfg Config) workload.Source { return workload.NewUniform(cfg.Seed) }},
	}
}

// advInserts is the document size an adv variant grows to from empty.
func advInserts(cfg Config) int { return cfg.BaseElems + cfg.InsertElems }

// advWorkload grows a document from empty under src: every op is an
// element insert whose position the source picks from the labeler's
// current labels, and every op is metered.
func advWorkload(cfg Config, src workload.Source) func(order.Labeler, *Recorder) error {
	return func(l order.Labeler, rec *Recorder) error {
		d := workload.NewDoc(l)
		return workload.Run(d, src, advInserts(cfg), func(op workload.Op, apply func() error) error {
			return rec.Do(apply)
		})
	}
}

// RunAdversary executes the adversarial workloads over the scheme matrix.
func RunAdversary(cfg Config) ([]SchemeRun, error) {
	specs := []SchemeSpec{WBoxSpec(), WBoxOSpec(), BBoxSpec(), BBoxOSpec(), NaiveSpec(advNaiveK)}
	var out []SchemeRun
	for _, vt := range advVariants() {
		runs, err := RunUpdateWorkload(cfg, specs, func(l order.Labeler, rec *Recorder) error {
			return advWorkload(cfg, vt.src(cfg))(l, rec)
		})
		if err != nil {
			return nil, fmt.Errorf("adv%s: %w", vt.suffix, err)
		}
		for _, r := range runs {
			r.Scheme += vt.suffix
			out = append(out, r)
		}
	}
	return out, nil
}

// relabelsPerInsert digs the amortized relabels-per-insert gauge out of a
// run's gauges (-1 when absent).
func relabelsPerInsert(r SchemeRun) float64 {
	for _, g := range r.Gauges {
		if strings.HasPrefix(g.Key(), "boxes_amortized_relabels_per_insert") {
			return g.Value
		}
	}
	return -1
}

// Adv prints the adversarial-workload experiment: the usual I/O table
// plus the collapse table — amortized relabels/insert per scheme under
// each adversary, with the bisect/uniform ratio that the benchdiff gates
// pin down.
func Adv(w io.Writer, cfg Config) error {
	runs, err := RunAdversary(cfg)
	if err != nil {
		return err
	}
	WriteAvgTable(w, fmt.Sprintf("Adversarial insertion (BKS lower-bound workloads; %d element inserts from empty)", advInserts(cfg)), runs)

	byRow := make(map[string]float64, len(runs))
	var schemes []string
	for _, r := range runs {
		byRow[r.Scheme] = relabelsPerInsert(r)
		if !strings.Contains(r.Scheme, "/") {
			schemes = append(schemes, r.Scheme)
		}
	}
	fmt.Fprintf(w, "\nAmortized relabeled records per insert (cost ledger)\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "scheme\tbks-bisect\tbks-front\tuniform\tbisect/uniform\n")
	for _, s := range schemes {
		bis, fr, uni := byRow[s], byRow[s+"/front"], byRow[s+"/uniform"]
		ratio := "inf"
		if uni > 0 {
			ratio = fmt.Sprintf("%.1fx", bis/uni)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%s\n", s, bis, fr, uni, ratio)
	}
	return tw.Flush()
}
