package core

import (
	"testing"

	"boxes/internal/order"
	"boxes/internal/query"
	"boxes/internal/xmlgen"
)

func allSchemes() []Options {
	return []Options{
		{Scheme: SchemeWBox, BlockSize: 512},
		{Scheme: SchemeWBoxO, BlockSize: 512},
		{Scheme: SchemeBBox, BlockSize: 512},
		{Scheme: SchemeBBox, BlockSize: 512, Ordinal: true},
		{Scheme: SchemeWBox, BlockSize: 512, Ordinal: true},
		{Scheme: SchemeNaive, BlockSize: 512, NaiveK: 8},
	}
}

func TestOpenRejectsBadOptions(t *testing.T) {
	if _, err := Open(Options{Scheme: SchemeNaive}); err == nil {
		t.Error("naive without K accepted")
	}
	if _, err := Open(Options{Scheme: Scheme(99)}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := Open(Options{Scheme: SchemeWBox, BlockSize: 100}); err == nil {
		t.Error("tiny block size accepted")
	}
}

func TestLoadAndSpansAcrossSchemes(t *testing.T) {
	tree := xmlgen.XMark(400, 3)
	for _, opt := range allSchemes() {
		t.Run(opt.Scheme.String(), func(t *testing.T) {
			st, err := Open(opt)
			if err != nil {
				t.Fatal(err)
			}
			doc, err := st.Load(tree)
			if err != nil {
				t.Fatal(err)
			}
			if st.Count() != uint64(2*tree.Elements()) {
				t.Fatalf("count = %d", st.Count())
			}
			if opt.Scheme == SchemeNaive {
				return // naive labels may exceed uint64 for large k; k=8 is fine though
			}
			elems, err := doc.LabeledElems()
			if err != nil {
				t.Fatal(err)
			}
			// Root must contain everything.
			root := elems[0]
			for _, e := range elems[1:] {
				if !root.Span.Contains(e.Span) {
					t.Fatalf("root does not contain %q %v", e.Name, e.Span)
				}
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestContainmentJoinThroughStore(t *testing.T) {
	tree := xmlgen.XMark(500, 4)
	st, err := Open(Options{Scheme: SchemeBBox, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := st.Load(tree)
	if err != nil {
		t.Fatal(err)
	}
	anc, err := doc.SpansOf("open_auction")
	if err != nil {
		t.Fatal(err)
	}
	desc, err := doc.SpansOf("increase")
	if err != nil {
		t.Fatal(err)
	}
	pairs := query.ContainmentJoin(anc, desc)
	// Every increase lives inside exactly one open_auction in XMark.
	if len(pairs) != len(desc) {
		t.Fatalf("join found %d pairs for %d increases", len(pairs), len(desc))
	}
}

func TestEditingThroughStore(t *testing.T) {
	for _, opt := range allSchemes() {
		t.Run(opt.Scheme.String(), func(t *testing.T) {
			st, err := Open(opt)
			if err != nil {
				t.Fatal(err)
			}
			doc, err := st.Load(xmlgen.TwoLevel(100))
			if err != nil {
				t.Fatal(err)
			}
			// New last child of the root.
			ne, err := st.InsertElementBefore(doc.Elems[0].End)
			if err != nil {
				t.Fatal(err)
			}
			// Subtree insert before it.
			sub := xmlgen.TwoLevel(30)
			subElems, err := st.InsertSubtreeBefore(ne.Start, sub)
			if err != nil {
				t.Fatal(err)
			}
			if len(subElems) != 30 {
				t.Fatalf("subtree elems = %d", len(subElems))
			}
			// And delete that subtree again.
			if err := st.DeleteSubtree(subElems[0]); err != nil {
				t.Fatal(err)
			}
			if err := st.DeleteElement(ne); err != nil {
				t.Fatal(err)
			}
			if st.Count() != 200 {
				t.Fatalf("count = %d, want 200", st.Count())
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestOrdinalThroughStore(t *testing.T) {
	st, err := Open(Options{Scheme: SchemeBBox, BlockSize: 512, Ordinal: true})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := st.Load(xmlgen.TwoLevel(50))
	if err != nil {
		t.Fatal(err)
	}
	ord, err := st.OrdinalLookup(doc.Elems[0].Start)
	if err != nil {
		t.Fatal(err)
	}
	if ord != 0 {
		t.Fatalf("root start ordinal = %d", ord)
	}
	ordEnd, err := st.OrdinalLookup(doc.Elems[0].End)
	if err != nil {
		t.Fatal(err)
	}
	if ordEnd != 99 {
		t.Fatalf("root end ordinal = %d, want 99", ordEnd)
	}
}

func TestCachingModes(t *testing.T) {
	for _, mode := range []Caching{CachingOff, CachingBasic, CachingLogged} {
		st, err := Open(Options{Scheme: SchemeWBox, BlockSize: 512, Caching: mode, LogK: 8})
		if err != nil {
			t.Fatal(err)
		}
		if (st.Cache() != nil) != (mode != CachingOff) {
			t.Fatalf("mode %v: cache presence wrong", mode)
		}
		doc, err := st.Load(xmlgen.TwoLevel(50))
		if err != nil {
			t.Fatal(err)
		}
		if mode == CachingOff {
			continue
		}
		ref, err := st.Cache().NewRef(doc.Elems[10].Start)
		if err != nil {
			t.Fatal(err)
		}
		v, _, err := st.Cache().Lookup(&ref)
		if err != nil {
			t.Fatal(err)
		}
		direct, _ := st.Lookup(doc.Elems[10].Start)
		if v != direct {
			t.Fatalf("cached %d != direct %d", v, direct)
		}
	}
}

func TestWBoxOPairLookupCost(t *testing.T) {
	st, err := Open(Options{Scheme: SchemeWBoxO, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := st.Load(xmlgen.TwoLevel(2000))
	if err != nil {
		t.Fatal(err)
	}
	st.ResetStats()
	before := st.Stats()
	if _, err := st.LookupSpan(doc.Elems[1000]); err != nil {
		t.Fatal(err)
	}
	if d := st.Stats().Sub(before); d.Total() != 2 {
		t.Fatalf("W-BOX-O span lookup = %v, want 2 I/Os", d)
	}
}

func TestStatsAccumulate(t *testing.T) {
	st, err := Open(Options{Scheme: SchemeWBox, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := st.Load(xmlgen.TwoLevel(500))
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats().Writes == 0 {
		t.Fatal("bulk load wrote nothing?")
	}
	st.ResetStats()
	if _, err := st.Lookup(doc.Elems[100].Start); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Reads == 0 {
		t.Fatal("lookup read nothing?")
	}
	if st.Blocks() == 0 {
		t.Fatal("no blocks allocated?")
	}
}

func TestBootstrapFromEmpty(t *testing.T) {
	for _, opt := range allSchemes() {
		st, err := Open(opt)
		if err != nil {
			t.Fatal(err)
		}
		e, err := st.InsertFirstElement()
		if err != nil {
			t.Fatalf("%v: %v", opt.Scheme, err)
		}
		if _, err := st.InsertElementBefore(e.End); err != nil {
			t.Fatalf("%v: %v", opt.Scheme, err)
		}
		if st.Count() != 4 {
			t.Fatalf("%v: count = %d", opt.Scheme, st.Count())
		}
	}
}

var _ = order.NilLID

func TestCompareAcrossSchemes(t *testing.T) {
	tree := xmlgen.XMark(300, 6)
	for _, opt := range allSchemes() {
		if opt.Scheme == SchemeNaive {
			continue // naive labels may exceed uint64 for big k; k=8 here is fine but skip for symmetry with Lookup semantics
		}
		t.Run(opt.Scheme.String(), func(t *testing.T) {
			st, err := Open(opt)
			if err != nil {
				t.Fatal(err)
			}
			doc, err := st.Load(tree)
			if err != nil {
				t.Fatal(err)
			}
			// Tag order follows element preorder for start tags.
			cases := [][2]order.LID{
				{doc.Elems[0].Start, doc.Elems[1].Start},
				{doc.Elems[10].Start, doc.Elems[10].End},
				{doc.Elems[50].End, doc.Elems[50].Start},
				{doc.Elems[7].Start, doc.Elems[7].Start},
			}
			want := []int{-1, -1, 1, 0}
			for i, c := range cases {
				got, err := st.Compare(c[0], c[1])
				if err != nil {
					t.Fatal(err)
				}
				if got != want[i] {
					t.Errorf("case %d: Compare = %d, want %d", i, got, want[i])
				}
			}
		})
	}
}
