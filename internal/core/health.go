package core

import "boxes/internal/obs"

// Health gathers the structural gauges of every layer of the store — the
// labeler's tree walk (height, occupancy, balance slack, label-space
// utilization, LIDF fragmentation), the pager (footprint, LRU fill and hit
// ratio), and the caching layer when present — each sample stamped with
// the store's scheme label. Tree walks read every block, so expect O(N/B)
// I/Os per call.
//
// The walk runs on the calling goroutine against live structures: only
// call it when no update is in flight (the structures are single-writer).
// SyncStore.Health serializes against operations for concurrent use.
func (s *Store) Health() []obs.GaugeValue {
	var gs []obs.GaugeValue
	if c, ok := s.labeler.(obs.Collector); ok {
		gs = append(gs, c.CollectGauges()...)
	}
	gs = append(gs, s.store.CollectGauges()...)
	if s.cache != nil {
		gs = append(gs, s.cache.CollectGauges()...)
	}
	return obs.WithLabel(gs, "scheme", s.schemeName)
}

// RegisterHealthGauges registers the store as a scrape-time gauge source on
// its metrics registry, so /metrics and Snapshot include the structural
// gauges. Scrapes walk the live structure on the scraping goroutine;
// register only when scrapes cannot race updates — after loading completes,
// or on a SyncStore (whose RegisterHealthGauges variant takes the store
// lock per scrape).
func (s *Store) RegisterHealthGauges() {
	s.reg.RegisterCollector(obs.CollectorFunc(s.Health))
}
