package core

import (
	"errors"
	"path/filepath"
	"testing"

	"boxes/internal/order"
	"boxes/internal/pager"
	"boxes/internal/xmlgen"
)

func persistSchemes() []Options {
	return []Options{
		{Scheme: SchemeWBox, BlockSize: 512},
		{Scheme: SchemeWBoxO, BlockSize: 512},
		{Scheme: SchemeWBox, BlockSize: 512, Ordinal: true},
		{Scheme: SchemeBBox, BlockSize: 512},
		{Scheme: SchemeBBox, BlockSize: 512, Ordinal: true, RelaxedFanout: true},
		{Scheme: SchemeNaive, BlockSize: 512, NaiveK: 6},
	}
}

func TestSaveAndReopenMemBackend(t *testing.T) {
	for _, opt := range persistSchemes() {
		t.Run(opt.Scheme.String(), func(t *testing.T) {
			backend := pager.NewMemBackend(opt.BlockSize)
			opt.Backend = backend
			st, err := Open(opt)
			if err != nil {
				t.Fatal(err)
			}
			doc, err := st.Load(xmlgen.XMark(300, 5))
			if err != nil {
				t.Fatal(err)
			}
			// Mutate a little so the state is not just a bulk load.
			ne, err := st.InsertElementBefore(doc.Elems[10].Start)
			if err != nil {
				t.Fatal(err)
			}
			wantSpan := func(s *Store) map[order.LID]order.Label {
				out := map[order.LID]order.Label{}
				for _, e := range append(doc.Elems[:20:20], ne) {
					for _, lid := range []order.LID{e.Start, e.End} {
						if opt.Scheme == SchemeNaive {
							continue
						}
						v, err := s.Lookup(lid)
						if err != nil {
							t.Fatal(err)
						}
						out[lid] = v
					}
				}
				return out
			}
			before := wantSpan(st)
			count := st.Count()
			if err := st.Save(); err != nil {
				t.Fatal(err)
			}

			st2, err := OpenExisting(backend, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if st2.Scheme() != opt.Scheme {
				t.Fatalf("scheme = %v, want %v", st2.Scheme(), opt.Scheme)
			}
			if st2.Count() != count {
				t.Fatalf("count = %d, want %d", st2.Count(), count)
			}
			after := wantSpan(st2)
			for lid, v := range before {
				if after[lid] != v {
					t.Fatalf("lid %d: label %d became %d after reopen", lid, v, after[lid])
				}
			}
			if err := st2.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// The reopened store keeps working.
			if _, err := st2.InsertElementBefore(ne.Start); err != nil {
				t.Fatal(err)
			}
			if err := st2.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSaveAndReopenFileBackend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.box")
	fb, err := pager.CreateFile(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(Options{Scheme: SchemeWBox, BlockSize: 512, Backend: fb})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := st.Load(xmlgen.TwoLevel(400))
	if err != nil {
		t.Fatal(err)
	}
	lid := doc.Elems[200].Start
	want, err := st.Lookup(lid)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	// Full process-restart simulation: reopen the file.
	fb2, err := pager.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := OpenExisting(fb2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := st2.Lookup(lid)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("label %d became %d across restart", want, got)
	}
	if err := st2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Continue editing, save again (replacing the old blob), reopen again.
	if _, err := st2.InsertElementBefore(lid); err != nil {
		t.Fatal(err)
	}
	if err := st2.Save(); err != nil {
		t.Fatal(err)
	}
	st3, err := OpenExisting(fb2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Count() != st2.Count() {
		t.Fatalf("second reopen count %d, want %d", st3.Count(), st2.Count())
	}
	if err := st3.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenExistingWithoutSave(t *testing.T) {
	backend := pager.NewMemBackend(512)
	if _, err := OpenExisting(backend, Options{}); !errors.Is(err, ErrNoSavedStore) {
		t.Fatalf("err = %v, want ErrNoSavedStore", err)
	}
}

func TestReopenedNaivePreservesOrder(t *testing.T) {
	backend := pager.NewMemBackend(512)
	st, err := Open(Options{Scheme: SchemeNaive, BlockSize: 512, NaiveK: 6, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := st.Load(xmlgen.TwoLevel(60))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenExisting(backend, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The in-memory document order must have survived: inserting into a
	// tight spot still works and preserves validity.
	for i := 0; i < 20; i++ {
		if _, err := st2.InsertElementBefore(doc.Elems[30].Start); err != nil {
			t.Fatal(err)
		}
	}
	if err := st2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
