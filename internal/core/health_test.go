package core

import (
	"errors"
	"strings"
	"testing"

	"boxes/internal/obs"
	"boxes/internal/pager"
	"boxes/internal/xmlgen"
)

// healthConfigs is the full scheme matrix the health gauges must cover.
func healthConfigs() []struct {
	name string
	opts Options
} {
	return []struct {
		name string
		opts Options
	}{
		{"wbox", Options{Scheme: SchemeWBox, BlockSize: 512}},
		{"wboxo", Options{Scheme: SchemeWBoxO, BlockSize: 512}},
		{"bbox", Options{Scheme: SchemeBBox, BlockSize: 512}},
		{"bboxo", Options{Scheme: SchemeBBox, BlockSize: 512, Ordinal: true}},
		{"naive", Options{Scheme: SchemeNaive, BlockSize: 512, NaiveK: 4}},
	}
}

func findGauge(gs []obs.GaugeValue, name string) (obs.GaugeValue, bool) {
	for _, g := range gs {
		if g.Name == name {
			return g, true
		}
	}
	return obs.GaugeValue{}, false
}

func TestHealthGaugesAllSchemes(t *testing.T) {
	for _, c := range healthConfigs() {
		t.Run(c.name, func(t *testing.T) {
			st, err := Open(c.opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.Load(xmlgen.TwoLevel(400)); err != nil {
				t.Fatal(err)
			}
			gs := st.Health()
			if len(gs) == 0 {
				t.Fatal("no health gauges")
			}
			scheme := st.Scheme().String()
			for _, g := range gs {
				if len(g.Labels) == 0 || g.Labels[0][0] != "scheme" || g.Labels[0][1] != scheme {
					t.Fatalf("gauge %s not stamped with scheme %q", g.Key(), scheme)
				}
			}
			h, ok := findGauge(gs, "boxes_tree_height")
			if !ok {
				t.Fatal("boxes_tree_height missing")
			}
			if h.Value != float64(st.Height()) {
				t.Errorf("boxes_tree_height = %v, store height %d", h.Value, st.Height())
			}
			if live, ok := findGauge(gs, "boxes_labels_live"); !ok || live.Value != float64(st.Count()) {
				t.Errorf("boxes_labels_live = %+v, store count %d", live, st.Count())
			}
			if we, ok := findGauge(gs, "boxes_health_walk_errors"); ok && we.Value != 0 {
				t.Errorf("walk errors = %v on a healthy store", we.Value)
			}
			if pb, ok := findGauge(gs, "pager_blocks"); !ok || pb.Value <= 0 {
				t.Errorf("pager_blocks = %+v", pb)
			}
			if lf, ok := findGauge(gs, "lidf_records_live"); !ok || lf.Value <= 0 {
				t.Errorf("lidf_records_live = %+v", lf)
			}
			// A loaded tree must report positive occupancy observations: the
			// +Inf bucket of the occupancy distribution counts every node.
			if c.name != "naive" {
				var inf float64
				for _, g := range gs {
					if g.Name == "boxes_node_occupancy" {
						for _, kv := range g.Labels {
							if kv[0] == "le" && kv[1] == "+Inf" {
								inf += g.Value
							}
						}
					}
				}
				if inf <= 0 {
					t.Errorf("occupancy +Inf buckets sum to %v, want > 0", inf)
				}
			}
		})
	}
}

func TestHealthGaugesEmptyStore(t *testing.T) {
	for _, c := range healthConfigs() {
		t.Run(c.name, func(t *testing.T) {
			st, err := Open(c.opts)
			if err != nil {
				t.Fatal(err)
			}
			gs := st.Health() // must not panic on a store with no labels
			if h, ok := findGauge(gs, "boxes_tree_height"); !ok || h.Value != float64(st.Height()) {
				t.Errorf("boxes_tree_height = %+v, store height %d", h, st.Height())
			}
			if we, ok := findGauge(gs, "boxes_health_walk_errors"); ok && we.Value != 0 {
				t.Errorf("walk errors = %v on an empty store", we.Value)
			}
		})
	}
}

// TestHealthWalkSurvivesInjectedFailures checks the gauge walk degrades
// instead of failing when the backend is refusing I/O: it returns what it
// can and reports the interruptions in boxes_health_walk_errors.
func TestHealthWalkSurvivesInjectedFailures(t *testing.T) {
	flaky := pager.NewFlakyBackend(pager.NewMemBackend(512), 1<<30)
	st, err := Open(Options{Scheme: SchemeWBox, BlockSize: 512, Backend: flaky})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := st.Load(xmlgen.TwoLevel(400))
	if err != nil {
		t.Fatal(err)
	}
	flaky.Budget = flaky.Ops() // every backend op from here on fails
	if _, err := st.InsertElementBefore(doc.Elems[50].Start); !errors.Is(err, pager.ErrInjected) {
		t.Fatalf("insert err = %v, want injected", err)
	}
	gs := st.Health()
	we, ok := findGauge(gs, "boxes_health_walk_errors")
	if !ok {
		t.Fatal("boxes_health_walk_errors missing from degraded walk")
	}
	if we.Value == 0 {
		t.Error("walk errors = 0 despite dead backend")
	}
	// The zero-I/O gauges are still there.
	if _, ok := findGauge(gs, "boxes_tree_height"); !ok {
		t.Error("boxes_tree_height missing from degraded walk")
	}
	if _, ok := findGauge(gs, "lidf_fragmentation"); !ok {
		t.Error("lidf_fragmentation missing from degraded walk")
	}
}

// TestCrashDumpOnInjectedFailure exercises the whole flight-recorder path:
// a FlakyBackend kills an insert, and the store's recorder writes a crash
// file carrying the trigger, the recent ops, and the structural gauges.
func TestCrashDumpOnInjectedFailure(t *testing.T) {
	dir := t.TempDir()
	flaky := pager.NewFlakyBackend(pager.NewMemBackend(512), 1<<30)
	st, err := Open(Options{Scheme: SchemeWBox, BlockSize: 512, Backend: flaky, CrashDir: dir, CrashRing: 32})
	if err != nil {
		t.Fatal(err)
	}
	fr := st.FlightRecorder()
	if fr == nil {
		t.Fatal("CrashDir set but no flight recorder installed")
	}
	doc, err := st.Load(xmlgen.TwoLevel(400))
	if err != nil {
		t.Fatal(err)
	}
	st.RegisterHealthGauges() // quiescent: the failing insert below dumps gauges too
	for i := 0; i < 5; i++ {
		if _, err := st.InsertElementBefore(doc.Elems[50].Start); err != nil {
			t.Fatal(err)
		}
	}
	flaky.Budget = flaky.Ops()
	if _, err := st.InsertElementBefore(doc.Elems[50].Start); !errors.Is(err, pager.ErrInjected) {
		t.Fatalf("insert err = %v, want injected", err)
	}

	if fr.Dumps() != 1 {
		t.Fatalf("dumps = %d, want 1 (writer err: %v)", fr.Dumps(), fr.Err())
	}
	d, err := obs.ReadCrashDump(fr.LastDump())
	if err != nil {
		t.Fatal(err)
	}
	if d.Trigger.Op != "insert" || !strings.Contains(d.Trigger.Error, "injected") {
		t.Errorf("trigger = %+v", d.Trigger)
	}
	if len(d.Events) == 0 {
		t.Error("no ring events in dump")
	}
	if _, ok := findGauge(d.Gauges, "boxes_tree_height"); !ok {
		t.Errorf("dump gauges missing boxes_tree_height: %d gauges", len(d.Gauges))
	}
	if d.Metrics.Ops["insert"].Errors == 0 {
		t.Error("dump metrics do not show the failed insert")
	}
}

// TestRegisterHealthGaugesExposition loads one store and checks the
// Prometheus exposition carries the full set of structural gauge families
// the issue promises (>= 10 on a loaded store).
func TestRegisterHealthGaugesExposition(t *testing.T) {
	st, err := Open(Options{Scheme: SchemeWBox, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(xmlgen.TwoLevel(400)); err != nil {
		t.Fatal(err)
	}
	st.RegisterHealthGauges()
	text := st.MetricsRegistry().String()
	families := []string{
		"boxes_tree_height",
		"boxes_tree_nodes",
		"boxes_node_occupancy",
		"boxes_balance_slack",
		"boxes_labels_live",
		"boxes_labels_dead",
		"boxes_label_space_utilization",
		"boxes_health_walk_errors",
		"lidf_blocks",
		"lidf_records_live",
		"lidf_free_slots",
		"lidf_fragmentation",
		"pager_blocks",
	}
	for _, f := range families {
		if !strings.Contains(text, "# TYPE "+f+" gauge") {
			t.Errorf("exposition missing gauge family %s", f)
		}
	}
	if !strings.Contains(text, `boxes_tree_height{scheme="W-BOX"}`) {
		t.Errorf("scheme label missing:\n%s", text)
	}
}

func TestSyncStoreHealth(t *testing.T) {
	st, err := Open(Options{Scheme: SchemeBBox, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	ss := NewSyncStore(st)
	doc, err := ss.Load(xmlgen.TwoLevel(300))
	if err != nil {
		t.Fatal(err)
	}
	gs := ss.Health()
	if _, ok := findGauge(gs, "boxes_tree_height"); !ok {
		t.Fatal("SyncStore.Health missing boxes_tree_height")
	}
	// SyncStore collectors take the store lock per scrape, so registering
	// before further updates is safe.
	ss.RegisterHealthGauges()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			ss.MetricsRegistry().GatherGauges()
		}
	}()
	for i := 0; i < 20; i++ {
		if _, err := ss.InsertElementBefore(doc.Elems[10].Start); err != nil {
			t.Error(err)
			break
		}
	}
	<-done
}
