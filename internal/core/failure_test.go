package core

import (
	"errors"
	"testing"

	"boxes/internal/pager"
	"boxes/internal/xmlgen"
)

// TestInjectedFailuresSurfaceCleanly drives every scheme against backends
// that fail after a progressively later operation, asserting that every
// failure is returned as an error wrapping pager.ErrInjected — never a
// panic, never a silent success.
func TestInjectedFailuresSurfaceCleanly(t *testing.T) {
	schemes := []Options{
		{Scheme: SchemeWBox, BlockSize: 512},
		{Scheme: SchemeWBoxO, BlockSize: 512},
		{Scheme: SchemeBBox, BlockSize: 512, Ordinal: true},
		{Scheme: SchemeNaive, BlockSize: 512, NaiveK: 4},
	}
	tree := xmlgen.TwoLevel(200)
	for _, opt := range schemes {
		t.Run(opt.Scheme.String(), func(t *testing.T) {
			// First measure how many backend ops a full workload needs.
			probe := pager.NewFlakyBackend(pager.NewMemBackend(opt.BlockSize), 1<<30)
			o := opt
			o.Backend = probe
			st, err := Open(o)
			if err != nil {
				t.Fatal(err)
			}
			doc, err := st.Load(tree)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 30; i++ {
				if _, err := st.InsertElementBefore(doc.Elems[50].Start); err != nil {
					t.Fatal(err)
				}
			}
			total := probe.Ops()

			// Now re-run with budgets cutting the workload off at various
			// points, including mid-operation.
			for _, budget := range []int{total / 7, total / 3, total / 2, total - 3} {
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("budget %d: panic: %v", budget, r)
						}
					}()
					flaky := pager.NewFlakyBackend(pager.NewMemBackend(opt.BlockSize), budget)
					o := opt
					o.Backend = flaky
					st, err := Open(o)
					if err != nil {
						return // even Open may fail; fine
					}
					var sawErr error
					doc, err := st.Load(tree)
					if err != nil {
						sawErr = err
					} else {
						for i := 0; i < 30 && sawErr == nil; i++ {
							if _, err := st.InsertElementBefore(doc.Elems[50].Start); err != nil {
								sawErr = err
							}
						}
					}
					if sawErr == nil {
						t.Fatalf("budget %d: workload succeeded despite injection (needs %d ops)", budget, total)
					}
					if !errors.Is(sawErr, pager.ErrInjected) {
						t.Fatalf("budget %d: error does not wrap ErrInjected: %v", budget, sawErr)
					}
				}()
			}
		})
	}
}

// TestLookupAfterFailedUpdate checks that a failed update leaves lookups
// of untouched labels answerable once the backend recovers (the in-memory
// bookkeeping is not poisoned by the error path).
func TestLookupAfterFailedUpdate(t *testing.T) {
	flaky := pager.NewFlakyBackend(pager.NewMemBackend(512), 1<<30)
	st, err := Open(Options{Scheme: SchemeBBox, BlockSize: 512, Backend: flaky})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := st.Load(xmlgen.TwoLevel(300))
	if err != nil {
		t.Fatal(err)
	}
	// Fail the very next backend operation, then recover.
	flaky.Budget = flaky.Ops()
	if _, err := st.InsertElementBefore(doc.Elems[50].Start); !errors.Is(err, pager.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	flaky.Budget = 1 << 30
	// A label far away from the failed update must still resolve.
	if _, err := st.Lookup(doc.Elems[250].Start); err != nil {
		t.Fatalf("lookup after recovery: %v", err)
	}
}
