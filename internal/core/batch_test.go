package core

import (
	"errors"
	"path/filepath"
	"testing"

	"boxes/internal/order"
	"boxes/internal/pager"
	"boxes/internal/xmlgen"
)

// openDurableBatch creates a durable file-backed WBox store for the batch
// tests and bootstraps one element.
func openDurableBatch(t *testing.T, dur *pager.Durability) (*Store, *pager.FileBackend, order.ElemLIDs) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "batch.boxes")
	fb, err := pager.CreateFileOpts(path, pager.FileOptions{BlockSize: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(Options{
		Scheme: SchemeWBox, BlockSize: 512,
		Backend: fb, Durable: true, Durability: dur,
	})
	if err != nil {
		t.Fatal(err)
	}
	root, err := st.InsertFirstElement()
	if err != nil {
		t.Fatal(err)
	}
	return st, fb, root
}

// TestApplyBatchOneTransaction verifies the point of the batch API: N
// mutations commit as ONE WAL transaction — one commit record, one
// durability point — instead of N.
func TestApplyBatchOneTransaction(t *testing.T) {
	st, fb, root := openDurableBatch(t, nil)
	defer fb.Close()

	before := fb.WALStats()
	ops := []Op{
		{Kind: OpInsertBefore, LID: root.End},
		{Kind: OpInsertBefore, LID: root.End},
		{Kind: OpInsertBefore, LID: root.End},
		{Kind: OpLookupSpan, Elem: root},
		{Kind: OpInsertBefore, LID: root.Start},
	}
	results, err := st.ApplyBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ops) {
		t.Fatalf("got %d results, want %d", len(results), len(ops))
	}
	if sp := results[3].Span; sp.Start >= sp.End {
		t.Fatalf("inverted span %+v", sp)
	}
	after := fb.WALStats()
	if got := after.Commits - before.Commits; got != 1 {
		t.Fatalf("batch of %d ops used %d WAL commits, want 1", len(ops), got)
	}
	if got := after.Syncs - before.Syncs; got != 1 {
		t.Fatalf("batch of %d ops used %d WAL fsyncs, want 1", len(ops), got)
	}
	if got, want := st.Count(), uint64(2*5); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyBatchAtomicOnFailure verifies abort-on-error: when an op inside
// a batch fails, nothing of the batch reaches the backend — a reopened
// store shows the exact pre-batch state.
func TestApplyBatchAtomicOnFailure(t *testing.T) {
	st, fb, root := openDurableBatch(t, nil)
	countBefore := st.Count()

	ops := []Op{
		{Kind: OpInsertBefore, LID: root.End},
		{Kind: OpInsertBefore, LID: root.End},
		{Kind: OpLookup, LID: order.LID(1 << 40)}, // unknown LID: fails
		{Kind: OpInsertBefore, LID: root.End},
	}
	_, err := st.ApplyBatch(ops)
	if err == nil {
		t.Fatal("batch with a bad op succeeded")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a BatchError", err)
	}
	if be.Index != 2 || be.Kind != OpLookup {
		t.Fatalf("BatchError pinpoints op %d (%s), want op 2 (lookup)", be.Index, be.Kind)
	}

	// The failed batch must not have committed its prefix: reopen from disk
	// and verify the pre-batch state.
	path := fb.Path()
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	fb2, err := pager.OpenFileOpts(path, pager.FileOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	re, err := OpenExisting(fb2, Options{Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Count(); got != countBefore {
		t.Fatalf("reopened count = %d, want pre-batch %d", got, countBefore)
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := re.LookupSpan(root); err != nil {
		t.Fatalf("pre-batch element lost: %v", err)
	}
}

// TestApplyBatchGroupPrefix verifies group-commit crash semantics at the
// core level: several batches queued into one held group recover as a
// clean prefix of batches after the group is cut — never a partial batch.
func TestApplyBatchGroupPrefix(t *testing.T) {
	st, fb, root := openDurableBatch(t, &pager.Durability{Every: 8})
	st.SetDeferredDurability(true)

	// Queue three batches into one held group; tickets stay pending.
	before := fb.WALStats()
	fb.HoldGroupCommit(true)
	var tickets []*pager.CommitTicket
	for i := 0; i < 3; i++ {
		if _, err := st.ApplyBatch([]Op{
			{Kind: OpInsertBefore, LID: root.End},
			{Kind: OpInsertBefore, LID: root.Start},
		}); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		tickets = append(tickets, st.TakeTicket())
	}
	fb.HoldGroupCommit(false)
	for i, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}

	stats := fb.WALStats()
	if g, n := stats.GroupCommits-before.GroupCommits, stats.GroupedTxns-before.GroupedTxns; g != 1 || n != 3 {
		t.Fatalf("3 held batches flushed as %d groups of %d txns, want 1 group of 3", g, n)
	}
	if got, want := st.Count(), uint64(2+3*4); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	path := fb.Path()
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	fb2, err := pager.OpenFileOpts(path, pager.FileOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	re, err := OpenExisting(fb2, Options{Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := re.Count(), uint64(2+3*4); got != want {
		t.Fatalf("reopened count = %d, want %d", got, want)
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadBatchedMatchesLoad verifies that the incremental batch loader
// produces the same labeled document as the bulk loader: same element
// count, same relative label order, and working span queries.
func TestLoadBatchedMatchesLoad(t *testing.T) {
	tree := xmlgen.TwoLevel(60)

	bulk, err := Open(Options{Scheme: SchemeBBox, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	bulkDoc, err := bulk.Load(tree)
	if err != nil {
		t.Fatal(err)
	}

	for _, batch := range []int{1, 7, 64} {
		st, err := Open(Options{Scheme: SchemeWBox, BlockSize: 512})
		if err != nil {
			t.Fatal(err)
		}
		doc, err := st.LoadBatched(tree, batch)
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if got, want := st.Count(), bulk.Count(); got != want {
			t.Fatalf("batch=%d: count = %d, want %d", batch, got, want)
		}
		if err := st.CheckInvariants(); err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if len(doc.Elems) != len(bulkDoc.Elems) {
			t.Fatalf("batch=%d: %d elems, want %d", batch, len(doc.Elems), len(bulkDoc.Elems))
		}
		// Every element's span must enclose its children's spans exactly as
		// in the bulk-loaded document: compare the preorder sequence of
		// start/end ordinal ranks.
		for i, e := range doc.Elems {
			sp, err := st.LookupSpan(e)
			if err != nil {
				t.Fatalf("batch=%d elem %d: %v", batch, i, err)
			}
			if sp.Start >= sp.End {
				t.Fatalf("batch=%d elem %d: inverted span %+v", batch, i, sp)
			}
		}
		// Root must enclose everything.
		rootSp, err := st.LookupSpan(doc.Elems[0])
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(doc.Elems); i++ {
			sp, _ := st.LookupSpan(doc.Elems[i])
			if sp.Start <= rootSp.Start || sp.End >= rootSp.End {
				t.Fatalf("batch=%d elem %d: span %+v escapes root %+v", batch, i, sp, rootSp)
			}
		}
	}
}
