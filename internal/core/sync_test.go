package core

import (
	"sync"
	"testing"

	"boxes/internal/xmlgen"
)

// TestSyncStoreConcurrentUse hammers a SyncStore from several goroutines;
// run under -race this verifies the serialization wrapper.
func TestSyncStoreConcurrentUse(t *testing.T) {
	base, err := Open(Options{Scheme: SchemeBBox, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	st := NewSyncStore(base)
	doc, err := st.Load(xmlgen.TwoLevel(500))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch (g + i) % 3 {
				case 0:
					if _, err := st.Lookup(doc.Elems[(g*53+i)%500].Start); err != nil {
						errCh <- err
						return
					}
				case 1:
					if _, err := st.LookupSpan(doc.Elems[(g*31+i)%500]); err != nil {
						errCh <- err
						return
					}
				default:
					e, err := st.InsertElementBefore(doc.Elems[(g*17+i)%500].Start)
					if err != nil {
						errCh <- err
						return
					}
					if err := st.DeleteElement(e); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if st.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", st.Count())
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
