package core

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"boxes/internal/order"
	"boxes/internal/pager"
	"boxes/internal/xmlgen"
)

// TestSyncStoreConcurrentUse hammers a SyncStore from several goroutines;
// run under -race this verifies the serialization wrapper.
func TestSyncStoreConcurrentUse(t *testing.T) {
	base, err := Open(Options{Scheme: SchemeBBox, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	st := NewSyncStore(base)
	doc, err := st.Load(xmlgen.TwoLevel(500))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch (g + i) % 3 {
				case 0:
					if _, err := st.Lookup(doc.Elems[(g*53+i)%500].Start); err != nil {
						errCh <- err
						return
					}
				case 1:
					if _, err := st.LookupSpan(doc.Elems[(g*31+i)%500]); err != nil {
						errCh <- err
						return
					}
				default:
					e, err := st.InsertElementBefore(doc.Elems[(g*17+i)%500].Start)
					if err != nil {
						errCh <- err
						return
					}
					if err := st.DeleteElement(e); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if st.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", st.Count())
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncStoreConcurrentBatchReaders is the group-commit concurrency
// property test: one writer streams ApplyBatch transactions into a durable
// file-backed SyncStore while reader goroutines race it on the shared read
// path. Under -race this exercises the RWMutex split, the pager's shared
// mode, and the WAL group-commit overlay (readers may observe blocks whose
// group is still being flushed). Readers assert order invariants that must
// hold at every batch boundary: spans never invert and an element's start
// ordinal precedes its end ordinal.
func TestSyncStoreConcurrentBatchReaders(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.boxes")
	fb, err := pager.CreateFileOpts(path, pager.FileOptions{BlockSize: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Open(Options{
		Scheme: SchemeWBox, Ordinal: true, BlockSize: 512,
		Backend: fb, Durable: true,
		Durability: &pager.Durability{Every: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := NewSyncStore(base)
	doc, err := st.Load(xmlgen.TwoLevel(200))
	if err != nil {
		t.Fatal(err)
	}

	// The writer publishes the grown element set; readers only ever touch a
	// published snapshot, so every element they see is live (the writer
	// never deletes).
	var published atomic.Value
	published.Store(append([]order.ElemLIDs(nil), doc.Elems...))

	const (
		readers    = 4
		batches    = 40
		insertsPer = 4
	)
	done := make(chan struct{})
	errCh := make(chan error, readers+1)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(done)
		elems := append([]order.ElemLIDs(nil), doc.Elems...)
		for i := 0; i < batches; i++ {
			ops := make([]Op, 0, 2*insertsPer)
			for j := 0; j < insertsPer; j++ {
				at := elems[(i*37+j*11)%len(elems)]
				ops = append(ops,
					Op{Kind: OpInsertBefore, LID: at.End},
					Op{Kind: OpLookupSpan, Elem: at},
				)
			}
			results, err := st.ApplyBatch(ops)
			if err != nil {
				errCh <- err
				return
			}
			for k, op := range ops {
				if op.Kind == OpInsertBefore {
					elems = append(elems, results[k].Elem)
				}
			}
			published.Store(append([]order.ElemLIDs(nil), elems...))
		}
	}()

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				elems := published.Load().([]order.ElemLIDs)
				e := elems[(g*101+i*13)%len(elems)]
				sp, err := st.LookupSpan(e)
				if err != nil {
					errCh <- fmt.Errorf("reader %d: lookup-span: %w", g, err)
					return
				}
				if sp.Start >= sp.End {
					errCh <- fmt.Errorf("reader %d: inverted span [%d, %d]", g, sp.Start, sp.End)
					return
				}
				os, err := st.OrdinalLookup(e.Start)
				if err != nil {
					errCh <- fmt.Errorf("reader %d: ordinal start: %w", g, err)
					return
				}
				oe, err := st.OrdinalLookup(e.End)
				if err != nil {
					errCh <- fmt.Errorf("reader %d: ordinal end: %w", g, err)
					return
				}
				if os >= oe {
					errCh <- fmt.Errorf("reader %d: ordinal(start)=%d >= ordinal(end)=%d", g, os, oe)
					return
				}
			}
		}(g)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	want := uint64(2 * (200 + batches*insertsPer))
	if got := st.Count(); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	// The whole history must be recoverable from disk: every ApplyBatch
	// ticket resolved before its caller returned, so the reopened store
	// holds exactly the final count.
	fb2, err := pager.OpenFileOpts(path, pager.FileOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	re, err := OpenExisting(fb2, Options{Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	if got := re.Count(); got != want {
		t.Fatalf("reopened count = %d, want %d", got, want)
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
