package core

import (
	"context"
	"errors"
	"fmt"

	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/query"
	"boxes/internal/xmlgen"
)

// OpKind selects the operation an Op performs.
type OpKind int

const (
	// OpInsertBefore inserts one element before the tag at Op.LID.
	OpInsertBefore OpKind = iota
	// OpInsertFirst bootstraps an empty document.
	OpInsertFirst
	// OpInsertSubtree bulk-inserts Op.Tree before the tag at Op.LID.
	OpInsertSubtree
	// OpDelete removes the single label Op.LID.
	OpDelete
	// OpDeleteElement removes both labels of Op.Elem.
	OpDeleteElement
	// OpDeleteSubtree removes Op.Elem and all its descendants.
	OpDeleteSubtree
	// OpLookup reads the label of Op.LID (reads may interleave with
	// mutations inside one batch; each sees the batch's writes so far).
	OpLookup
	// OpLookupSpan reads both labels of Op.Elem.
	OpLookupSpan
	// OpOrdinalLookup reads the document position of Op.LID.
	OpOrdinalLookup
)

func (k OpKind) String() string {
	switch k {
	case OpInsertBefore:
		return "insert-before"
	case OpInsertFirst:
		return "insert-first"
	case OpInsertSubtree:
		return "insert-subtree"
	case OpDelete:
		return "delete"
	case OpDeleteElement:
		return "delete-element"
	case OpDeleteSubtree:
		return "delete-subtree"
	case OpLookup:
		return "lookup"
	case OpLookupSpan:
		return "lookup-span"
	case OpOrdinalLookup:
		return "ordinal-lookup"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one operation inside a batch. Which fields are read depends on
// Kind: LID targets single-label ops, Elem targets element ops, Tree is
// the payload of OpInsertSubtree.
type Op struct {
	Kind OpKind
	LID  order.LID
	Elem order.ElemLIDs
	Tree *xmlgen.Tree
}

// OpResult carries the outcome of one batch Op; which field is set depends
// on the Op's Kind.
type OpResult struct {
	Elem    order.ElemLIDs   // OpInsertBefore, OpInsertFirst
	Elems   []order.ElemLIDs // OpInsertSubtree
	Label   order.Label      // OpLookup
	Span    query.Span       // OpLookupSpan
	Ordinal uint64           // OpOrdinalLookup
}

// BatchError reports which operation of a batch failed.
type BatchError struct {
	Index int    // position in the ops slice
	Kind  OpKind // the failing operation
	Err   error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("core: batch op %d (%s): %v", e.Index, e.Kind, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// ApplyBatch runs ops as ONE logical operation: on a durable store all
// mutations plus one metadata rewrite commit as a single WAL transaction —
// one commit record, one durability point — instead of one per mutation.
// Results are positional (results[i] answers ops[i]).
//
// The batch is atomic on disk: if any op fails, the pager operation is
// aborted and no write of the batch reaches the backend. The in-memory
// structures may retain partial effects of the failed prefix, matching the
// existing single-op failure semantics; durable callers recover the exact
// pre-batch state by reopening from the backend.
func (s *Store) ApplyBatch(ops []Op) ([]OpResult, error) {
	return s.ApplyBatchCtx(context.Background(), ops)
}

// ApplyBatchCtx is ApplyBatch with a cancellation point between ops: an
// expired context aborts the batch before the next op runs, the pager
// operation rolls back, and no write reaches the backend. The check sits
// strictly before the commit protocol — once the last op has applied, the
// WAL commit runs to completion regardless of ctx, so a ctx error from
// this method guarantees the batch did NOT commit, and a nil error
// guarantees it is durable. Servers use this to shed queued work on
// deadline without ever cancelling mid-WAL-commit.
func (s *Store) ApplyBatchCtx(ctx context.Context, ops []Op) ([]OpResult, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	c := s.begin(obs.OpBatch)
	results := make([]OpResult, len(ops))
	err := s.durableBatch(func() error {
		for i := range ops {
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("core: batch aborted before op %d/%d: %w", i, len(ops), cerr)
			}
			if err := s.applyOne(&ops[i], &results[i]); err != nil {
				return &BatchError{Index: i, Kind: ops[i].Kind, Err: err}
			}
		}
		return nil
	})
	s.end(c, err)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// durableBatch is durable() with abort-on-error: a failed batch must not
// commit its prefix.
func (s *Store) durableBatch(fn func() error) error {
	if err := s.readOnlyErr(); err != nil {
		return err
	}
	if !s.opts.Durable {
		err := fn()
		s.noteFaults(err)
		return err
	}
	s.store.BeginOp()
	err := fn()
	if err == nil {
		err = s.persistMeta()
	}
	if err != nil {
		s.store.AbortOp()
		s.noteFaults(err)
		return err
	}
	if e := s.store.EndOp(); e != nil {
		s.noteFaults(e)
		return e
	}
	if t := s.store.TakeTicket(); t != nil {
		if s.deferred {
			s.ticket = t
		} else if werr := t.Wait(); werr != nil {
			s.noteFaults(werr)
			return werr
		}
	}
	s.noteFaults(nil)
	return nil
}

// applyOne dispatches one batch op against the labeler. It runs inside the
// batch's pager operation, so reads see the batch's prior writes. When span
// recording is on, each positional op becomes a child span of the batch, so
// a trace shows the individual inserts that later coalesce under one fsync.
func (s *Store) applyOne(op *Op, res *OpResult) (err error) {
	if tr := s.reg.Tracer(); tr.Enabled() {
		sp := tr.StartAuto(false, op.Kind.String())
		defer func() { sp.End(err) }()
	}
	switch op.Kind {
	case OpInsertBefore:
		e, err := s.labeler.InsertElementBefore(op.LID)
		res.Elem = e
		return err
	case OpInsertFirst:
		e, err := s.labeler.InsertFirstElement()
		res.Elem = e
		return err
	case OpInsertSubtree:
		if op.Tree == nil || op.Tree.Root == nil {
			return fmt.Errorf("empty subtree")
		}
		elems, err := s.labeler.InsertSubtreeBefore(op.LID, op.Tree.TagStream())
		res.Elems = elems
		return err
	case OpDelete:
		return s.labeler.Delete(op.LID)
	case OpDeleteElement:
		if err := s.labeler.Delete(op.Elem.Start); err != nil {
			return err
		}
		return s.labeler.Delete(op.Elem.End)
	case OpDeleteSubtree:
		return s.labeler.DeleteSubtree(op.Elem.Start, op.Elem.End)
	case OpLookup:
		v, err := s.labeler.Lookup(op.LID)
		res.Label = v
		return err
	case OpLookupSpan:
		sp, err := s.lookupSpan(op.Elem)
		res.Span = sp
		return err
	case OpOrdinalLookup:
		v, err := s.labeler.OrdinalLookup(op.LID)
		res.Ordinal = v
		return err
	default:
		return fmt.Errorf("unknown op kind %v", op.Kind)
	}
}

// LoadBatched inserts tree element-by-element through ApplyBatch
// transactions of batchSize inserts — the incremental counterpart of Load:
// instead of one bulk-load transaction, the document arrives as a stream
// of batches, each a single WAL commit. Insertion runs in BFS order so an
// element's parent is always applied before the element references the
// parent's end tag; the returned Document's Elems are still indexed by
// preorder element index, exactly like Load's.
func (s *Store) LoadBatched(tree *xmlgen.Tree, batchSize int) (*Document, error) {
	if tree == nil || tree.Root == nil {
		return nil, errors.New("core: empty tree")
	}
	if batchSize < 1 {
		batchSize = 1
	}
	nodes := tree.Nodes()
	idx := make(map[*xmlgen.Node]int, len(nodes))
	for i, n := range nodes {
		idx[n] = i
	}
	elems := make([]order.ElemLIDs, len(nodes))
	applied := make([]bool, len(nodes))

	res, err := s.ApplyBatch([]Op{{Kind: OpInsertFirst}})
	if err != nil {
		return nil, err
	}
	elems[0] = res[0].Elem
	applied[0] = true

	var ops []Op
	var owners []int
	flush := func() error {
		if len(ops) == 0 {
			return nil
		}
		res, err := s.ApplyBatch(ops)
		if err != nil {
			return err
		}
		for i := range ops {
			elems[owners[i]] = res[i].Elem
			applied[owners[i]] = true
		}
		ops, owners = ops[:0], owners[:0]
		return nil
	}
	queue := []*xmlgen.Node{tree.Root}
	for len(queue) > 0 {
		nd := queue[0]
		queue = queue[1:]
		p := idx[nd]
		for _, c := range nd.Children {
			if !applied[p] {
				// The parent's insert is still pending in the current
				// batch; apply it so its end-tag LID exists.
				if err := flush(); err != nil {
					return nil, err
				}
			}
			ops = append(ops, Op{Kind: OpInsertBefore, LID: elems[p].End})
			owners = append(owners, idx[c])
			queue = append(queue, c)
			if len(ops) >= batchSize {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return &Document{Store: s, Tree: tree, Elems: elems}, nil
}
