package core

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"boxes/internal/obs"
	"boxes/internal/xmlgen"
)

// TestLedgerLiveScrape is the acceptance check for the cost ledger's
// concurrency story: writer goroutines mutate a SyncStore while scraper
// goroutines hit /metrics and /debug/heat over real HTTP. At every instant
// the relaxed conservation invariant (counterSum >= cellSum >= total) must
// hold in what a scraper observes, and at quiescence the strict form —
// including the ledger-vs-pager I/O cross-check — must balance exactly.
// Run under -race this also proves the ledger and heat paths are data-race
// free against concurrent scrapes.
func TestLedgerLiveScrape(t *testing.T) {
	base, err := Open(Options{Scheme: SchemeWBox, Ordinal: true, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	st := NewSyncStore(base)
	doc, err := st.Load(xmlgen.TwoLevel(300))
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(obs.Handler(st.MetricsRegistry()))
	defer srv.Close()

	const writers = 4
	const opsPerWriter = 300
	done := make(chan struct{})
	errCh := make(chan error, writers+2)
	var writerWg, scraperWg sync.WaitGroup

	for g := 0; g < writers; g++ {
		writerWg.Add(1)
		go func(g int) {
			defer writerWg.Done()
			for i := 0; i < opsPerWriter; i++ {
				at := doc.Elems[(g*61+i*7)%len(doc.Elems)]
				if i%3 == 0 {
					if _, err := st.Lookup(at.Start); err != nil {
						errCh <- fmt.Errorf("writer %d: lookup: %w", g, err)
						return
					}
					continue
				}
				if _, err := st.InsertElementBefore(at.End); err != nil {
					errCh <- fmt.Errorf("writer %d: insert: %w", g, err)
					return
				}
			}
		}(g)
	}

	// Two scrapers: one Prometheus, one /debug/heat JSON. Each asserts the
	// live payload is well-formed and conservation-clean on every poll.
	scraperWg.Add(2)
	go func() {
		defer scraperWg.Done()
		for polls := 0; ; polls++ {
			select {
			case <-done:
				return
			default:
			}
			resp, err := http.Get(srv.URL + "/metrics")
			if err != nil {
				errCh <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errCh <- err
				return
			}
			text := string(body)
			for _, want := range []string{"boxes_cost_total{", "boxes_amortized_ios_per_op{"} {
				if !strings.Contains(text, want) {
					errCh <- fmt.Errorf("/metrics poll %d missing %s", polls, want)
					return
				}
			}
		}
	}()
	go func() {
		defer scraperWg.Done()
		polls := 0
		for {
			select {
			case <-done:
				if polls == 0 {
					errCh <- fmt.Errorf("heat scraper never completed a poll")
				}
				return
			default:
			}
			resp, err := http.Get(srv.URL + "/debug/heat")
			if err != nil {
				errCh <- err
				return
			}
			var hd obs.HeatDebugPayload
			err = json.NewDecoder(resp.Body).Decode(&hd)
			resp.Body.Close()
			if err != nil {
				errCh <- fmt.Errorf("decoding /debug/heat: %w", err)
				return
			}
			if !hd.ConservationOK {
				errCh <- fmt.Errorf("live conservation violated: %s", hd.ConservationEr)
				return
			}
			polls++
		}
	}()

	writerWg.Wait()
	close(done)
	scraperWg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Quiescent: exact balance, including the pager I/O cross-check.
	if err := st.Unwrap().CheckLedger(true); err != nil {
		t.Fatalf("strict conservation at quiescence: %v", err)
	}
	// The workload's inserts must show up in the label heat map and its
	// block traffic in the block heat map.
	hd := st.MetricsRegistry().HeatDebug()
	findSeries := func(snap obs.HeatSpaceSnap, name string) obs.HeatSeriesSnap {
		for _, s := range snap.Series {
			if s.Name == name {
				return s
			}
		}
		t.Fatalf("space %s has no series %s", snap.Space, name)
		return obs.HeatSeriesSnap{}
	}
	if s := findSeries(hd.Label, "inserts"); s.Samples == 0 {
		t.Error("label heat map recorded no insertions")
	}
	if s := findSeries(hd.Block, "reads"); s.Samples == 0 {
		t.Error("block heat map recorded no reads")
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
