package core

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"boxes/internal/obs"
	"boxes/internal/pager"
	"boxes/internal/xmlgen"
)

// TestPhaseCoverageDurable is the attribution-accounting test: on a durable
// file-backed store, the per-op phase histograms (structure residual plus
// the instrumented pager/WAL sections) must account for at least 90% of the
// measured op wall time, for both inserts and lookups. The phases recorded
// outside the op window (lock waits) or overlapping other phases
// (retry_backoff) are excluded from the sum by design.
func TestPhaseCoverageDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cover.boxes")
	fb, err := pager.CreateFileOpts(path, pager.FileOptions{BlockSize: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(Options{Scheme: SchemeBBox, BlockSize: 512, Backend: fb, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	doc, err := st.Load(xmlgen.TwoLevel(200))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := st.InsertElementBefore(doc.Elems[i%200].End); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		if _, err := st.Lookup(doc.Elems[i%200].Start); err != nil {
			t.Fatal(err)
		}
	}

	snap := st.Metrics()
	for _, op := range []string{"insert", "lookup"} {
		latNs := snap.Ops[op].Latency.Sum
		if latNs == 0 {
			t.Fatalf("%s: no latency recorded", op)
		}
		var phaseNs uint64
		for ph, h := range snap.Phases[op] {
			switch ph {
			case "lock_wait_read", "lock_wait_write", "retry_backoff":
				continue // outside the op window / overlapping by design
			}
			phaseNs += h.Sum
		}
		ratio := float64(phaseNs) / float64(latNs)
		t.Logf("%s: phases %.3fms of %.3fms latency (%.1f%%)", op,
			float64(phaseNs)/1e6, float64(latNs)/1e6, 100*ratio)
		if ratio < 0.90 {
			t.Errorf("%s: phase histograms cover %.1f%% of op latency, want >= 90%%", op, 100*ratio)
		}
		if ratio > 1.10 {
			t.Errorf("%s: phase histograms over-count: %.1f%% of op latency", op, 100*ratio)
		}
	}
	// The durable insert path must show its commit cost explicitly.
	if snap.Phases["insert"]["wal_commit"].Total() == 0 {
		t.Error("insert row has no wal_commit phase")
	}
	if snap.Phases["insert"]["meta_persist"].Total() == 0 {
		t.Error("insert row has no meta_persist phase")
	}
}

// validateExposition asserts body is parseable Prometheus text exposition
// with exactly one # TYPE announcement per family.
func validateExposition(t *testing.T, body string) {
	t.Helper()
	types := map[string]bool{}
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$`)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if types[fields[2]] {
				t.Fatalf("duplicate # TYPE for family %s", fields[2])
			}
			types[fields[2]] = true
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line %q", line)
		}
		if _, err := strconv.ParseFloat(m[3], 64); err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		name := m[1]
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && types[strings.TrimSuffix(name, suf)] {
				family = strings.TrimSuffix(name, suf)
				break
			}
		}
		if !types[family] {
			t.Fatalf("sample %s has no # TYPE announcement", name)
		}
	}
}

// TestMetricsScrapeRace races /metrics and /debug/spans scrapes against
// active writers, shared-path readers, and the online scrubber on a durable
// group-commit SyncStore — including one scrape taken while the committer
// is deliberately held mid-group. Every scrape must stay parseable with a
// single # TYPE per family. Run under -race this is the satellite
// concurrency gate for the span/phase instrumentation.
func TestMetricsScrapeRace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scrape.boxes")
	fb, err := pager.CreateFileOpts(path, pager.FileOptions{BlockSize: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Open(Options{
		Scheme: SchemeBBox, BlockSize: 512, Backend: fb,
		Durable: true, Durability: &pager.Durability{Every: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := NewSyncStore(base)
	doc, err := st.Load(xmlgen.TwoLevel(150))
	if err != nil {
		t.Fatal(err)
	}
	st.RegisterHealthGauges()
	st.MetricsRegistry().Tracer().Start(obs.TraceOptions{SlowOp: time.Millisecond})
	sc, err := st.StartScrubber(pager.ScrubConfig{BatchBlocks: 16, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()

	srv := httptest.NewServer(obs.Handler(st.MetricsRegistry()))
	defer srv.Close()
	scrape := func(path string) (string, error) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}

	var finite, readersWG sync.WaitGroup
	errCh := make(chan error, 16)
	stop := make(chan struct{})
	for g := 0; g < 2; g++ { // writers
		finite.Add(1)
		go func(g int) {
			defer finite.Done()
			for i := 0; i < 40; i++ {
				e, err := st.InsertElementBefore(doc.Elems[(g*37+i)%150].Start)
				if err != nil {
					errCh <- err
					return
				}
				if err := st.DeleteElement(e); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ { // readers
		readersWG.Add(1)
		go func(g int) {
			defer readersWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := st.Lookup(doc.Elems[(g*53+i)%150].Start); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	bodies := make(chan string, 64)
	for g := 0; g < 2; g++ { // scrapers
		finite.Add(1)
		go func() {
			defer finite.Done()
			for i := 0; i < 20; i++ {
				body, err := scrape("/metrics")
				if err != nil {
					errCh <- err
					return
				}
				bodies <- body
				var d obs.SpansDebug
				if sb, err := scrape("/debug/spans"); err != nil {
					errCh <- err
					return
				} else if err := json.Unmarshal([]byte(sb), &d); err != nil {
					errCh <- fmt.Errorf("/debug/spans: %w", err)
					return
				}
			}
		}()
	}
	finite.Wait() // writers and scrapers
	close(stop)   // then release the readers
	readersWG.Wait()
	close(errCh)
	close(bodies)
	for err := range errCh {
		t.Fatal(err)
	}
	n := 0
	for body := range bodies {
		validateExposition(t, body)
		n++
	}
	if n == 0 {
		t.Fatal("no scrapes validated")
	}

	// Scrape mid-group-commit: hold the committer, let a mutation enqueue
	// (it blocks on its ticket), scrape, then release.
	fb.HoldGroupCommit(true)
	insertDone := make(chan error, 1)
	go func() {
		_, err := st.InsertElementBefore(doc.Elems[0].Start)
		insertDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the txn reach the queue
	body, err := scrape("/metrics")
	if err != nil {
		t.Fatal(err)
	}
	validateExposition(t, body)
	fb.HoldGroupCommit(false)
	if err := <-insertDone; err != nil {
		t.Fatal(err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchTraceCoalescing drives deferred ApplyBatch transactions into a
// held group committer and asserts the trace shows the coalescing: several
// batch op spans (each with per-positional-op child spans) whose commit
// resolves in ONE commit_group span covering multiple transactions, with
// queue_wait spans linking each transaction back to its op span.
func TestBatchTraceCoalescing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coalesce.boxes")
	fb, err := pager.CreateFileOpts(path, pager.FileOptions{BlockSize: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(Options{
		Scheme: SchemeBBox, BlockSize: 512, Backend: fb,
		Durable: true, Durability: &pager.Durability{Every: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	root, err := st.InsertFirstElement()
	if err != nil {
		t.Fatal(err)
	}
	tr := st.MetricsRegistry().Tracer()
	tr.Start(obs.TraceOptions{})
	st.SetDeferredDurability(true)

	fb.HoldGroupCommit(true)
	ops := make([]Op, 8)
	for i := range ops {
		ops[i] = Op{Kind: OpInsertBefore, LID: root.End}
	}
	const batches = 4
	for b := 0; b < batches; b++ {
		if _, err := st.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
	}
	fb.HoldGroupCommit(false)
	if err := st.TakeTicket().Wait(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	batchSpans := map[uint64]bool{}
	childInserts := 0
	var maxGroup int
	queueWaits := 0
	for _, sp := range spans {
		switch sp.Name {
		case "batch":
			batchSpans[sp.ID] = true
		case "commit_group":
			if sp.N > maxGroup {
				maxGroup = sp.N
			}
		case "queue_wait":
			if sp.Parent != 0 {
				queueWaits++
			}
		}
	}
	for _, sp := range spans {
		if sp.Name == "insert-before" && batchSpans[sp.Parent] {
			childInserts++
		}
	}
	if len(batchSpans) != batches {
		t.Errorf("want %d batch op spans, got %d", batches, len(batchSpans))
	}
	if childInserts != batches*len(ops) {
		t.Errorf("want %d per-positional-op child spans, got %d", batches*len(ops), childInserts)
	}
	if maxGroup < 2 {
		t.Errorf("no commit group coalesced multiple transactions (max group size %d)", maxGroup)
	}
	if queueWaits < 2 {
		t.Errorf("want queue_wait spans parented to op spans, got %d", queueWaits)
	}

	var b strings.Builder
	if err := obs.WriteChromeTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	lanes := map[string]bool{}
	for _, e := range events {
		if e["ph"] == "M" {
			if args, ok := e["args"].(map[string]any); ok {
				if name, ok := args["name"].(string); ok {
					lanes[name] = true
				}
			}
		}
	}
	for _, want := range []string{"writer", "committer", "commit-queue"} {
		if !lanes[want] {
			t.Errorf("trace missing lane %q (have %v)", want, lanes)
		}
	}
}

// TestSlowOpThresholdOption verifies Options.SlowOpThreshold arms the
// tracer and that slow operations reach the flight-recorder crash dump.
func TestSlowOpThresholdOption(t *testing.T) {
	st, err := Open(Options{Scheme: SchemeWBox, BlockSize: 512, SlowOpThreshold: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !st.MetricsRegistry().Tracer().Enabled() {
		t.Fatal("SlowOpThreshold should enable span recording")
	}
	if _, err := st.InsertFirstElement(); err != nil {
		t.Fatal(err)
	}
	slow := st.MetricsRegistry().Tracer().SlowOps()
	if len(slow) == 0 {
		t.Fatal("no slow ops captured at a 1ns threshold")
	}
}

var _ = http.StatusOK
