package core

import (
	"strings"
	"testing"

	"boxes/internal/obs"
	"boxes/internal/pager"
	"boxes/internal/xmlgen"
)

// drive runs a mixed workload through every instrumented Store entry
// point: bulk load, lookups, element inserts/deletes, subtree
// insert/delete, and an invariant check.
func drive(t *testing.T, st *Store) {
	t.Helper()
	doc, err := st.Load(xmlgen.TwoLevel(200))
	if err != nil {
		t.Fatal(err)
	}
	anchor := doc.Elems[1]
	for i := 0; i < 60; i++ {
		e, err := st.InsertElementBefore(anchor.Start)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Lookup(e.Start); err != nil {
			t.Fatal(err)
		}
		if _, err := st.LookupSpan(e); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Compare(e.Start, anchor.Start); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if err := st.DeleteElement(doc.Elems[100+i]); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := st.InsertSubtreeBefore(doc.Elems[2].Start, xmlgen.TwoLevel(50))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.DeleteSubtree(sub[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestOpSeriesMatchIOStats asserts the tentpole accounting identity: every
// block I/O flows through an instrumented core operation, so the summed
// per-op read/write histogram sums must equal the pager's own counters —
// on all four schemes.
func TestOpSeriesMatchIOStats(t *testing.T) {
	for _, opt := range []Options{
		{Scheme: SchemeWBox, BlockSize: 512},
		{Scheme: SchemeWBoxO, BlockSize: 512},
		{Scheme: SchemeBBox, BlockSize: 512},
		{Scheme: SchemeNaive, BlockSize: 512, NaiveK: 8},
	} {
		t.Run(opt.Scheme.String(), func(t *testing.T) {
			st, err := Open(opt)
			if err != nil {
				t.Fatal(err)
			}
			drive(t, st)
			snap := st.Metrics()
			var reads, writes, ops uint64
			for _, s := range snap.Ops {
				reads += s.Reads.Sum
				writes += s.Writes.Sum
				ops += s.Count
			}
			io := st.Stats()
			if reads != io.Reads || writes != io.Writes {
				t.Errorf("op-series I/O (r=%d, w=%d) != pager stats %v", reads, writes, io)
			}
			if ops == 0 {
				t.Error("no operations recorded")
			}
			for _, name := range []string{"bulk_load", "lookup", "insert", "delete", "subtree_insert", "subtree_delete", "check"} {
				if snap.Ops[name].Count == 0 {
					t.Errorf("op %q recorded no invocations", name)
				}
			}
			if snap.Schemes[0] != opt.Scheme.String() {
				t.Errorf("schemes = %v", snap.Schemes)
			}
		})
	}
}

// TestStructuralCounters asserts each scheme's structural events reach its
// dedicated counters under a workload known to trigger them.
func TestStructuralCounters(t *testing.T) {
	t.Run("wbox-splits", func(t *testing.T) {
		st, err := Open(Options{Scheme: SchemeWBox, BlockSize: 512})
		if err != nil {
			t.Fatal(err)
		}
		doc, err := st.Load(xmlgen.TwoLevel(100))
		if err != nil {
			t.Fatal(err)
		}
		// Concentrated insertion before one anchor forces leaf splits.
		for i := 0; i < 400; i++ {
			if _, err := st.InsertElementBefore(doc.Elems[1].Start); err != nil {
				t.Fatal(err)
			}
		}
		snap := st.Metrics()
		if snap.Counters["wbox_splits_total"] == 0 {
			t.Error("wbox_splits_total = 0 after concentrated insert workload")
		}
		if snap.Counters["lidf_allocs_total"] == 0 {
			t.Error("lidf_allocs_total = 0")
		}
	})

	t.Run("bbox-merges", func(t *testing.T) {
		st, err := Open(Options{Scheme: SchemeBBox, BlockSize: 512})
		if err != nil {
			t.Fatal(err)
		}
		doc, err := st.Load(xmlgen.TwoLevel(400))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			if err := st.DeleteElement(doc.Elems[i+1]); err != nil {
				t.Fatal(err)
			}
		}
		snap := st.Metrics()
		if snap.Counters["bbox_merges_total"] == 0 && snap.Counters["bbox_borrows_total"] == 0 {
			t.Error("no B-BOX underflow repairs recorded after mass deletion")
		}
		if snap.Counters["lidf_frees_total"] == 0 {
			t.Error("lidf_frees_total = 0")
		}
	})

	t.Run("naive-relabels", func(t *testing.T) {
		st, err := Open(Options{Scheme: SchemeNaive, BlockSize: 512, NaiveK: 1})
		if err != nil {
			t.Fatal(err)
		}
		doc, err := st.Load(xmlgen.TwoLevel(50))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if _, err := st.InsertElementBefore(doc.Elems[1].Start); err != nil {
				t.Fatal(err)
			}
		}
		if st.Metrics().Counters["naive_relabels_total"] == 0 {
			t.Error("naive_relabels_total = 0 with k=1 under repeated insertion")
		}
	})
}

// TestReflogCounters asserts the Section 6 cache outcomes land in the
// shared registry.
func TestReflogCounters(t *testing.T) {
	st, err := Open(Options{Scheme: SchemeWBox, BlockSize: 512, Caching: CachingLogged, LogK: 32})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := st.Load(xmlgen.TwoLevel(100))
	if err != nil {
		t.Fatal(err)
	}
	cache := st.Cache()
	ref, err := cache.NewRef(doc.Elems[5].Start)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh hit: nothing modified since the ref was built.
	if _, _, err := cache.Lookup(&ref); err != nil {
		t.Fatal(err)
	}
	// A logged insert elsewhere: next lookup repairs by replay.
	if _, err := st.InsertElementBefore(doc.Elems[50].Start); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cache.Lookup(&ref); err != nil {
		t.Fatal(err)
	}
	snap := st.Metrics()
	if snap.Counters["reflog_cache_hits_total"] == 0 {
		t.Error("reflog_cache_hits_total = 0")
	}
	if snap.Counters["reflog_cache_repairs_total"]+snap.Counters["reflog_cache_misses_total"] == 0 {
		t.Error("neither repair nor miss recorded after a logged modification")
	}
}

// TestTraceHookThroughOptions asserts hooks installed via Options see
// start/end pairs in order with the scheme attached.
func TestTraceHookThroughOptions(t *testing.T) {
	ring := obs.NewRingHook(64)
	st, err := Open(Options{Scheme: SchemeBBox, BlockSize: 512, TraceHooks: []obs.TraceHook{ring}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(xmlgen.TwoLevel(10)); err != nil {
		t.Fatal(err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	evs := ring.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4 (2 ops x start+end)", len(evs))
	}
	if !evs[0].Start || evs[1].Start || !evs[2].Start || evs[3].Start {
		t.Fatalf("start/end interleaving wrong: %+v", evs)
	}
	if evs[1].Event.Op != obs.OpBulkLoad || evs[3].Event.Op != obs.OpCheck {
		t.Fatalf("ops = %v, %v", evs[1].Event.Op, evs[3].Event.Op)
	}
	if evs[1].Event.Scheme != "B-BOX" {
		t.Fatalf("scheme = %q", evs[1].Event.Scheme)
	}
	if evs[1].Event.Writes == 0 {
		t.Error("bulk load charged no writes")
	}
}

// TestSharedRegistryAcrossStores asserts Options.Metrics aggregates
// several stores into one registry, as the benchmark harness does.
func TestSharedRegistryAcrossStores(t *testing.T) {
	reg := obs.NewRegistry()
	for _, opt := range []Options{
		{Scheme: SchemeWBox, BlockSize: 512, Metrics: reg},
		{Scheme: SchemeBBox, BlockSize: 512, Metrics: reg},
	} {
		st, err := Open(opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Load(xmlgen.TwoLevel(20)); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if len(snap.Schemes) != 2 {
		t.Fatalf("schemes = %v", snap.Schemes)
	}
	if snap.Ops["bulk_load"].Count != 2 {
		t.Fatalf("bulk_load count = %d, want 2", snap.Ops["bulk_load"].Count)
	}
	out := reg.String()
	if !strings.Contains(out, `boxes_store_info{scheme="W-BOX"} 1`) ||
		!strings.Contains(out, `boxes_store_info{scheme="B-BOX"} 1`) {
		t.Error("exposition missing store info for a scheme")
	}
}

// TestMetricsSurviveOpenExisting asserts the runtime Metrics/TraceHooks
// options are honored when resuming a persisted store.
func TestMetricsSurviveOpenExisting(t *testing.T) {
	be := pager.NewMemBackend(512)
	st, err := Open(Options{Scheme: SchemeWBox, BlockSize: 512, Backend: be})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(xmlgen.TwoLevel(20)); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	st2, err := OpenExisting(be, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Lookup(1); err != nil {
		t.Fatal(err)
	}
	if reg.OpCount(obs.OpLookup) != 1 {
		t.Fatalf("lookup count = %d, want 1", reg.OpCount(obs.OpLookup))
	}
}
