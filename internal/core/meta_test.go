package core

import (
	"testing"

	"boxes/internal/bbox"
	"boxes/internal/pager"
	"boxes/internal/wbox"
	"boxes/internal/xmlgen"
)

// TestMetaRejectsMismatchedParameters ensures RestoreMeta refuses to load
// state into a structure built with different structural parameters, which
// would silently corrupt interpretation of every block.
func TestMetaRejectsMismatchedParameters(t *testing.T) {
	store := pager.NewMemStore(512)
	pw, err := wbox.NewParams(512, wbox.Basic, false)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := wbox.New(store, pw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wl.BulkLoad(xmlgen.TwoLevel(50).TagStream()); err != nil {
		t.Fatal(err)
	}
	meta := wl.MarshalMeta()

	// Pair-optimized target must refuse basic-variant metadata.
	po, err := wbox.NewParams(512, wbox.PairOptimized, false)
	if err != nil {
		t.Fatal(err)
	}
	wl2, err := wbox.New(pager.NewMemStore(512), po)
	if err != nil {
		t.Fatal(err)
	}
	if err := wl2.RestoreMeta(meta); err == nil {
		t.Fatal("variant mismatch accepted")
	}

	// Same story for B-BOX flags.
	pb, err := bbox.NewParams(512, false, false)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := bbox.New(pager.NewMemStore(512), pb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bl.InsertFirstElement(); err != nil {
		t.Fatal(err)
	}
	bmeta := bl.MarshalMeta()
	pbo, err := bbox.NewParams(512, true, false)
	if err != nil {
		t.Fatal(err)
	}
	bl2, err := bbox.New(pager.NewMemStore(512), pbo)
	if err != nil {
		t.Fatal(err)
	}
	if err := bl2.RestoreMeta(bmeta); err == nil {
		t.Fatal("ordinal mismatch accepted")
	}
}

// TestOpenExistingRejectsCorruptMeta corrupts the saved blob and expects a
// clean error.
func TestOpenExistingRejectsCorruptMeta(t *testing.T) {
	backend := pager.NewMemBackend(512)
	st, err := Open(Options{Scheme: SchemeWBox, BlockSize: 512, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(xmlgen.TwoLevel(50)); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	// Point the meta root at an arbitrary data block: the magic check
	// must fail.
	root, err := backend.MetaRoot()
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.SetMetaRoot(root + 1); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenExisting(backend, Options{}); err == nil {
		t.Fatal("corrupt metadata accepted")
	}
}

// TestOpenExistingBlockSizeMismatch ensures a saved store cannot be opened
// with the wrong block size.
func TestOpenExistingBlockSizeMismatch(t *testing.T) {
	// Saved metadata claims 512; reopening over a backend reporting a
	// different size must fail. (With a real file this cannot happen —
	// the pager file header fixes the size — but a custom backend could.)
	backend := pager.NewMemBackend(512)
	st, err := Open(Options{Scheme: SchemeBBox, BlockSize: 512, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(xmlgen.TwoLevel(50)); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenExisting(backend, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Count() != 100 {
		t.Fatalf("count = %d", st2.Count())
	}
}
