package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"boxes/internal/obs"
	"boxes/internal/pager"
)

// metaMarshaler is implemented by every labeling scheme: it captures the
// in-memory bookkeeping (roots, counters, extent tables) that complements
// the on-block data.
type metaMarshaler interface {
	MarshalMeta() []byte
	RestoreMeta(data []byte) error
}

var metaMagic = [8]byte{'B', 'O', 'X', 'M', 'E', 'T', 'A', '1'}

// ErrNoSavedStore is returned by OpenExisting when the backend holds no
// saved metadata.
var ErrNoSavedStore = errors.New("core: backend holds no saved store")

// Save persists the store's metadata to the backend so that OpenExisting
// can resume it later. The backend must implement pager.MetaRooter
// (FileBackend does; MemBackend too, for tests). The blob is written
// inside one pager operation, so on a WAL-enabled FileBackend the whole
// save is a single atomic transaction; on a FileBackend the file is also
// synced. With Options.Durable every mutating operation already persists
// metadata, so explicit Saves are only needed for non-durable stores.
func (s *Store) Save() error {
	if err := s.readOnlyErr(); err != nil {
		return err
	}
	s.store.BeginOp()
	err := s.persistMeta()
	if e := s.store.EndOp(); err == nil {
		err = e
	}
	if err == nil {
		if fb, ok := s.store.Backend().(*pager.FileBackend); ok {
			err = fb.Sync()
		}
	}
	s.noteFaults(err)
	return err
}

// persistMeta rewrites the metadata blob and repoints the backend's meta
// root at it. It must run inside an open pager operation; all of its
// writes stage into the surrounding transaction.
func (s *Store) persistMeta() error {
	mr, ok := s.store.Backend().(pager.MetaRooter)
	if !ok {
		return errors.New("core: backend cannot persist metadata")
	}
	mm, ok := s.labeler.(metaMarshaler)
	if !ok {
		return fmt.Errorf("core: scheme %v cannot persist metadata", s.opts.Scheme)
	}
	old, err := mr.MetaRoot()
	if err != nil {
		return err
	}
	if old != pager.NilBlock {
		if err := s.store.FreeBlob(old); err != nil {
			return err
		}
	}
	var buf bytes.Buffer
	buf.Write(metaMagic[:])
	binary.Write(&buf, binary.LittleEndian, uint8(s.opts.Scheme))
	binary.Write(&buf, binary.LittleEndian, uint32(s.opts.BlockSize))
	binary.Write(&buf, binary.LittleEndian, b2u8(s.opts.Ordinal))
	binary.Write(&buf, binary.LittleEndian, b2u8(s.opts.RelaxedFanout))
	binary.Write(&buf, binary.LittleEndian, uint32(s.opts.NaiveK))
	buf.Write(mm.MarshalMeta())
	head, err := s.store.WriteBlob(buf.Bytes())
	if err != nil {
		return err
	}
	return mr.SetMetaRoot(head)
}

// OpenExisting resumes a store previously persisted with Save (or by a
// Durable store's per-op metadata commits). Structural options (scheme,
// block size, variant flags) come from the saved metadata; only runtime
// options (caching mode, LRU size, durability, crash dir) are taken from
// runtime. When runtime.CrashDir is set, a failure to resume — corrupt
// metadata, a scheme that cannot restore, invariant-violating state —
// writes a flight-recorder dump tagged stage=open-existing before the
// error returns, so a failed recovery leaves an actionable artifact.
func OpenExisting(backend pager.Backend, runtime Options) (*Store, error) {
	st, err := openExisting(backend, runtime)
	if err != nil && runtime.CrashDir != "" {
		reg := runtime.Metrics
		if reg == nil {
			reg = obs.NewRegistry()
		}
		fr := obs.NewFlightRecorder(reg, runtime.CrashDir, runtime.CrashRing)
		fr.DumpFailure("open-existing", err, map[string]string{
			"stage": "open-existing",
		})
	}
	return st, err
}

func openExisting(backend pager.Backend, runtime Options) (*Store, error) {
	mr, ok := backend.(pager.MetaRooter)
	if !ok {
		return nil, errors.New("core: backend cannot persist metadata")
	}
	head, err := mr.MetaRoot()
	if err != nil {
		return nil, err
	}
	if head == pager.NilBlock {
		return nil, ErrNoSavedStore
	}
	probe := pager.NewStore(backend)
	blob, err := probe.ReadBlob(head)
	if err != nil {
		return nil, err
	}
	r := bytes.NewReader(blob)
	var magic [8]byte
	if _, err := r.Read(magic[:]); err != nil {
		return nil, err
	}
	if magic != metaMagic {
		return nil, errors.New("core: saved metadata is corrupt (bad magic)")
	}
	var scheme uint8
	var blockSize uint32
	var ordinal, relaxed uint8
	var naiveK uint32
	if err := binary.Read(r, binary.LittleEndian, &scheme); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &blockSize); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &ordinal); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &relaxed); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &naiveK); err != nil {
		return nil, err
	}
	if int(blockSize) != backend.BlockSize() {
		return nil, fmt.Errorf("core: saved block size %d, backend has %d", blockSize, backend.BlockSize())
	}
	opts := Options{
		Scheme:        Scheme(scheme),
		BlockSize:     int(blockSize),
		Ordinal:       ordinal == 1,
		RelaxedFanout: relaxed == 1,
		NaiveK:        int(naiveK),
		Caching:       runtime.Caching,
		LogK:          runtime.LogK,
		CacheBlocks:   runtime.CacheBlocks,
		Backend:       backend,
		Durable:       runtime.Durable,
		Durability:    runtime.Durability,
		Retry:         runtime.Retry,
		Metrics:       runtime.Metrics,
		TraceHooks:    runtime.TraceHooks,
		CrashDir:      runtime.CrashDir,
		CrashRing:     runtime.CrashRing,
	}
	st, err := Open(opts)
	if err != nil {
		return nil, err
	}
	rest := make([]byte, r.Len())
	if _, err := r.Read(rest); err != nil {
		return nil, err
	}
	mm, ok := st.labeler.(metaMarshaler)
	if !ok {
		return nil, fmt.Errorf("core: scheme %v cannot restore metadata", opts.Scheme)
	}
	if err := mm.RestoreMeta(rest); err != nil {
		return nil, err
	}
	return st, nil
}

func b2u8(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
