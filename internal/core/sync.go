package core

import (
	"sync"

	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/pager"
	"boxes/internal/query"
	"boxes/internal/xmlgen"
)

// SyncStore wraps a Store with a mutex so it can be shared by multiple
// goroutines. The underlying structures are single-writer (the pager's
// per-operation pinning is not reentrant), so every operation — including
// lookups, which may refresh caches — is serialized. The paper leaves true
// multi-user operation as future work; this wrapper makes the
// single-writer discipline safe to use from concurrent code.
type SyncStore struct {
	mu sync.Mutex
	st *Store
}

// NewSyncStore wraps st. The unwrapped Store must no longer be used
// directly.
func NewSyncStore(st *Store) *SyncStore { return &SyncStore{st: st} }

// Unwrap returns the underlying Store; callers must hold no concurrent
// operations while using it.
func (s *SyncStore) Unwrap() *Store { return s.st }

func (s *SyncStore) Scheme() Scheme {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Scheme()
}

func (s *SyncStore) Stats() pager.IOStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Stats()
}

// MetricsRegistry returns the underlying store's registry. The registry's
// own methods are concurrency-safe, so no lock is needed.
func (s *SyncStore) MetricsRegistry() *obs.Registry { return s.st.MetricsRegistry() }

// Metrics snapshots the underlying store's metrics.
func (s *SyncStore) Metrics() obs.Snapshot { return s.st.MetricsRegistry().Snapshot() }

func (s *SyncStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.ResetStats()
}

func (s *SyncStore) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Count()
}

func (s *SyncStore) Height() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Height()
}

func (s *SyncStore) LabelBits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.LabelBits()
}

func (s *SyncStore) Lookup(lid order.LID) (order.Label, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Lookup(lid)
}

func (s *SyncStore) LookupSpan(e order.ElemLIDs) (query.Span, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.LookupSpan(e)
}

func (s *SyncStore) OrdinalLookup(lid order.LID) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.OrdinalLookup(lid)
}

func (s *SyncStore) InsertElementBefore(lidOld order.LID) (order.ElemLIDs, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.InsertElementBefore(lidOld)
}

func (s *SyncStore) InsertFirstElement() (order.ElemLIDs, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.InsertFirstElement()
}

func (s *SyncStore) Delete(lid order.LID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Delete(lid)
}

func (s *SyncStore) DeleteElement(e order.ElemLIDs) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.DeleteElement(e)
}

func (s *SyncStore) DeleteSubtree(e order.ElemLIDs) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.DeleteSubtree(e)
}

func (s *SyncStore) InsertSubtreeBefore(lidOld order.LID, tree *xmlgen.Tree) ([]order.ElemLIDs, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.InsertSubtreeBefore(lidOld, tree)
}

func (s *SyncStore) Load(tree *xmlgen.Tree) (*Document, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Load(tree)
}

func (s *SyncStore) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.CheckInvariants()
}

func (s *SyncStore) Save() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Save()
}

// Health gathers the structural gauges of every layer, serialized against
// operations (the walk reads live structures).
func (s *SyncStore) Health() []obs.GaugeValue {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Health()
}

// RegisterHealthGauges registers the wrapped store as a scrape-time gauge
// source. Unlike Store.RegisterHealthGauges, every scrape takes the store
// lock, so live scrapes are safe alongside concurrent operations.
func (s *SyncStore) RegisterHealthGauges() {
	s.st.MetricsRegistry().RegisterCollector(obs.CollectorFunc(s.Health))
}
