package core

import (
	"context"
	"sync"
	"time"

	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/pager"
	"boxes/internal/query"
	"boxes/internal/xmlgen"
)

// SyncStore wraps a Store with a read/write lock so it can be shared by
// multiple goroutines: lookups (Lookup, LookupSpan, OrdinalLookup, Compare,
// and the scalar accessors) run concurrently under the read lock, while
// mutators, Load, Save, Health and CheckInvariants serialize under the
// write lock. The pager runs in shared mode (pager.Store.SetShared): reader
// operations skip the per-op pin map entirely, the LRU cache and I/O
// counters are internally synchronized, and writers are bracketed with
// BeginWrite/EndWrite so their pinned, batched path is unchanged.
//
// With group commit enabled (Options.Durability) mutators wait for their
// commit ticket AFTER releasing the write lock, so concurrently queued
// transactions coalesce into a single WAL fsync while the next writer
// proceeds. A mutator returns nil only once its transaction is durable.
// Lock acquisition waits are recorded in the registry's
// boxes_lock_wait_seconds histograms.
type SyncStore struct {
	mu sync.RWMutex
	st *Store
}

// NewSyncStore wraps st, switching its pager into shared-read mode and its
// durability into deferred-ticket mode. The unwrapped Store must no longer
// be used directly.
func NewSyncStore(st *Store) *SyncStore {
	st.store.SetShared(true)
	st.SetDeferredDurability(true)
	return &SyncStore{st: st}
}

// Unwrap returns the underlying Store; callers must hold no concurrent
// operations while using it.
func (s *SyncStore) Unwrap() *Store { return s.st }

// rlock acquires the read lock, recording the wait both in the legacy
// lock-wait histogram and as the lookup row's lock_wait_read phase.
func (s *SyncStore) rlock() {
	start := time.Now()
	s.mu.RLock()
	d := time.Since(start)
	s.st.reg.ObserveLockWait(obs.LockRead, d)
	s.st.reg.ObservePhase(obs.OpLookup, obs.PhaseLockWaitRead, d)
}

// write runs fn under the write lock with the pager's writer bracket, then
// waits for the commit ticket outside the lock. The lock wait is parked in
// the store so the next begin() attributes it to the op that paid for it
// (the op enum is not known until fn dispatches); the deferred ticket wait
// is attributed to the op recorded by the last end() under this lock.
func (s *SyncStore) write(fn func() error) error {
	start := time.Now()
	s.mu.Lock()
	wait := time.Since(start)
	s.st.reg.ObserveLockWait(obs.LockWrite, wait)
	s.st.pendingLockWait = int64(wait)
	s.st.store.BeginWrite()
	err := fn()
	s.st.store.EndWrite()
	ticket := s.st.TakeTicket()
	op := s.st.lastOp
	s.mu.Unlock()
	var werr error
	if ticket != nil {
		t0 := time.Now()
		werr = ticket.Wait()
		d := time.Since(t0)
		s.st.reg.ObservePhase(op, obs.PhaseFsyncWait, d)
		if tr := s.st.reg.Tracer(); tr.Enabled() {
			tr.RecordSpan(obs.LaneWriter, obs.PhaseFsyncWait.String(), 0, t0, d, 0, werr)
		}
	}
	if werr != nil {
		// A deferred commit failed after the lock was released: latch the
		// fault and enter degraded mode under a fresh write lock (the
		// rollback touches the labeler, which readers may be using).
		s.st.store.NoteWriteFault(werr)
		s.mu.Lock()
		s.st.noteFaults(werr)
		s.mu.Unlock()
		if err == nil {
			err = werr
		}
	}
	return err
}

func (s *SyncStore) Scheme() Scheme {
	s.rlock()
	defer s.mu.RUnlock()
	return s.st.Scheme()
}

func (s *SyncStore) Stats() pager.IOStats {
	s.rlock()
	defer s.mu.RUnlock()
	return s.st.Stats()
}

// MetricsRegistry returns the underlying store's registry. The registry's
// own methods are concurrency-safe, so no lock is needed.
func (s *SyncStore) MetricsRegistry() *obs.Registry { return s.st.MetricsRegistry() }

// Metrics snapshots the underlying store's metrics.
func (s *SyncStore) Metrics() obs.Snapshot { return s.st.MetricsRegistry().Snapshot() }

func (s *SyncStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.ResetStats()
}

func (s *SyncStore) Count() uint64 {
	s.rlock()
	defer s.mu.RUnlock()
	return s.st.Count()
}

func (s *SyncStore) Height() int {
	s.rlock()
	defer s.mu.RUnlock()
	return s.st.Height()
}

func (s *SyncStore) LabelBits() int {
	s.rlock()
	defer s.mu.RUnlock()
	return s.st.LabelBits()
}

func (s *SyncStore) Lookup(lid order.LID) (order.Label, error) {
	s.rlock()
	defer s.mu.RUnlock()
	return s.st.Lookup(lid)
}

func (s *SyncStore) LookupSpan(e order.ElemLIDs) (query.Span, error) {
	s.rlock()
	defer s.mu.RUnlock()
	return s.st.LookupSpan(e)
}

func (s *SyncStore) OrdinalLookup(lid order.LID) (uint64, error) {
	s.rlock()
	defer s.mu.RUnlock()
	return s.st.OrdinalLookup(lid)
}

// Compare orders two tags by document position under the read lock.
func (s *SyncStore) Compare(a, b order.LID) (int, error) {
	s.rlock()
	defer s.mu.RUnlock()
	return s.st.Compare(a, b)
}

func (s *SyncStore) InsertElementBefore(lidOld order.LID) (order.ElemLIDs, error) {
	var e order.ElemLIDs
	err := s.write(func() (err error) {
		e, err = s.st.InsertElementBefore(lidOld)
		return err
	})
	return e, err
}

func (s *SyncStore) InsertFirstElement() (order.ElemLIDs, error) {
	var e order.ElemLIDs
	err := s.write(func() (err error) {
		e, err = s.st.InsertFirstElement()
		return err
	})
	return e, err
}

func (s *SyncStore) Delete(lid order.LID) error {
	return s.write(func() error { return s.st.Delete(lid) })
}

func (s *SyncStore) DeleteElement(e order.ElemLIDs) error {
	return s.write(func() error { return s.st.DeleteElement(e) })
}

func (s *SyncStore) DeleteSubtree(e order.ElemLIDs) error {
	return s.write(func() error { return s.st.DeleteSubtree(e) })
}

func (s *SyncStore) InsertSubtreeBefore(lidOld order.LID, tree *xmlgen.Tree) ([]order.ElemLIDs, error) {
	var elems []order.ElemLIDs
	err := s.write(func() (err error) {
		elems, err = s.st.InsertSubtreeBefore(lidOld, tree)
		return err
	})
	return elems, err
}

// ApplyBatch commits ops as one atomic transaction (see Store.ApplyBatch)
// under the write lock, waiting for durability outside it.
func (s *SyncStore) ApplyBatch(ops []Op) ([]OpResult, error) {
	return s.ApplyBatchCtx(context.Background(), ops)
}

// ApplyBatchCtx is ApplyBatch with the cancellation semantics of
// Store.ApplyBatchCtx. The write-lock acquisition itself is not
// interruptible (a deadline that expires while queued behind the lock is
// detected before the first op runs and the batch aborts cleanly), and
// once the commit protocol starts the durability wait always runs to
// completion: a ctx error means nothing committed, nil means durable.
func (s *SyncStore) ApplyBatchCtx(ctx context.Context, ops []Op) ([]OpResult, error) {
	var results []OpResult
	err := s.write(func() (err error) {
		results, err = s.st.ApplyBatchCtx(ctx, ops)
		return err
	})
	return results, err
}

func (s *SyncStore) Load(tree *xmlgen.Tree) (*Document, error) {
	var doc *Document
	err := s.write(func() (err error) {
		doc, err = s.st.Load(tree)
		return err
	})
	return doc, err
}

func (s *SyncStore) CheckInvariants() error {
	return s.write(func() error { return s.st.CheckInvariants() })
}

func (s *SyncStore) Save() error {
	return s.write(func() error { return s.st.Save() })
}

// Health gathers the structural gauges of every layer, serialized against
// operations (the walk reads live structures).
func (s *SyncStore) Health() []obs.GaugeValue {
	var gs []obs.GaugeValue
	s.write(func() error {
		gs = s.st.Health()
		return nil
	})
	return gs
}

// RegisterHealthGauges registers the wrapped store as a scrape-time gauge
// source. Unlike Store.RegisterHealthGauges, every scrape takes the store
// lock, so live scrapes are safe alongside concurrent operations.
func (s *SyncStore) RegisterHealthGauges() {
	s.st.MetricsRegistry().RegisterCollector(obs.CollectorFunc(s.Health))
}

// Degraded reports whether the store is in read-only degraded mode. The
// flag is atomic; no lock is needed.
func (s *SyncStore) Degraded() bool { return s.st.Degraded() }

// DegradedCause returns the fault that flipped the store read-only, or nil.
func (s *SyncStore) DegradedCause() error { return s.st.DegradedCause() }

// ClearDegraded returns the store to read-write mode under the write lock.
func (s *SyncStore) ClearDegraded() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.ClearDegraded()
}

// Backup snapshots the store to path while readers (and the group-commit
// committer) keep running: a non-durable store first Saves its metadata
// under the write lock, then the block copy proceeds under the read lock,
// excluding mutators only.
func (s *SyncStore) Backup(path string) error {
	if !s.st.opts.Durable {
		if err := s.write(func() error { return s.st.Save() }); err != nil {
			return err
		}
	}
	s.rlock()
	defer s.mu.RUnlock()
	return s.st.backupNoSave(path)
}

// StartScrubber launches a background scrubber whose batches run under the
// store's read lock — concurrent with lookups, serialized against
// mutations. The caller owns the returned scrubber and must Stop it before
// Close.
func (s *SyncStore) StartScrubber(cfg pager.ScrubConfig) (*pager.Scrubber, error) {
	cfg.Guard = func(fn func()) {
		s.rlock()
		defer s.mu.RUnlock()
		fn()
	}
	sc, err := s.st.NewScrubber(cfg)
	if err != nil {
		return nil, err
	}
	sc.Start()
	return sc, nil
}

// Close releases the store under the write lock: pending group commits are
// drained and the backend is closed.
func (s *SyncStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Close()
}
