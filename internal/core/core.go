// Package core assembles the paper's system: a labeling Store that wires
// an immutable-LID file, one of the dynamic labeling schemes (W-BOX,
// W-BOX-O, B-BOX, naive-k), and optionally the Section 6 caching/logging
// layer over a block store with I/O accounting.
package core

import (
	"errors"
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"

	"boxes/internal/bbox"
	"boxes/internal/faults"
	"boxes/internal/naive"
	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/pager"
	"boxes/internal/query"
	"boxes/internal/reflog"
	"boxes/internal/wbox"
	"boxes/internal/xmlgen"
)

// Scheme selects the dynamic labeling structure.
type Scheme int

const (
	// SchemeWBox is the weight-balanced B-tree of Section 4: 1-I/O
	// lookups, O(log_B N) amortized inserts.
	SchemeWBox Scheme = iota
	// SchemeWBoxO is W-BOX-O, optimized for retrieving start/end label
	// pairs with a single structure I/O.
	SchemeWBoxO
	// SchemeBBox is the back-linked keyless B-tree of Section 5: O(1)
	// amortized updates, O(log_B N) lookups.
	SchemeBBox
	// SchemeNaive is the gap-based baseline with global relabeling.
	SchemeNaive
)

func (s Scheme) String() string {
	switch s {
	case SchemeWBox:
		return "W-BOX"
	case SchemeWBoxO:
		return "W-BOX-O"
	case SchemeBBox:
		return "B-BOX"
	case SchemeNaive:
		return "naive"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Caching selects the lookup acceleration mode of Section 6.
type Caching int

const (
	// CachingOff performs every lookup through the structure.
	CachingOff Caching = iota
	// CachingBasic caches label values with a single last-modified
	// timestamp.
	CachingBasic
	// CachingLogged additionally keeps a FIFO log of recent modification
	// effects and repairs cached values by replay.
	CachingLogged
)

// Options configures a Store.
type Options struct {
	Scheme    Scheme
	BlockSize int // default 8192, the paper's block size

	// Ordinal enables ordinal labeling support (size fields). For B-BOX
	// this is the B-BOX-O variant of the experiments.
	Ordinal bool
	// RelaxedFanout selects B-BOX's B/4 minimum fan-out (Section 5,
	// mixed-workload variant).
	RelaxedFanout bool
	// NaiveK is the k of naive-k (required for SchemeNaive).
	NaiveK int

	Caching Caching
	// LogK is the modification-log length for CachingLogged.
	LogK int

	// CacheBlocks enables a global LRU block cache of this many blocks
	// (0 = off, matching the paper's experiments).
	CacheBlocks int

	// Backend overrides the block store backend (default: in-memory).
	Backend pager.Backend

	// Durable makes every mutating operation crash-atomic: the operation is
	// wrapped in a single pager transaction and the store's metadata blob
	// (scheme roots, counters, LIDF extents) is re-persisted inside that
	// same transaction, so after a power cut OpenExisting resumes at an
	// exact operation boundary with no separate Save needed. Requires a
	// backend that supports atomic batches and metadata persistence
	// (FileBackend with its write-ahead log). Costs one blob rewrite per
	// update; with naive-k the blob grows with the document, so durable
	// naive stores pay proportionally more.
	Durable bool

	// Durability starts the backend's group committer (WAL group commit):
	// concurrently committing operations coalesce into a single WAL fsync.
	// Requires Durable and a backend that supports group commit
	// (pager.FileBackend). Mutators then return once their transaction is
	// queued; the commit ticket (TakeTicket, or SyncStore's automatic wait)
	// resolves when it is durable. Nil keeps synchronous per-operation
	// commits.
	Durability *pager.Durability

	// Retry wraps every raw backend read/write in bounded retries with
	// exponential backoff and jitter, so transient device faults (EINTR,
	// EAGAIN, short writes, injected transients) are absorbed instead of
	// surfacing. Nil disables retries. Exhausted write retries — like any
	// permanent write fault — flip the store into read-only degraded mode
	// (see ErrReadOnly).
	Retry *faults.RetryPolicy

	// Metrics routes the store's measurements into an existing registry,
	// so several stores (e.g. one per scheme in a benchmark) can share one
	// exposition endpoint. When nil the store creates its own registry;
	// metrics are always on — the no-hook fast path costs a few atomic
	// adds and zero allocations per operation.
	Metrics *obs.Registry

	// TraceHooks are installed on the registry at Open time, receiving a
	// structured event around every logical operation.
	TraceHooks []obs.TraceHook

	// CrashDir enables the flight recorder: on any operation error
	// (including injected backend faults) the last CrashRing op events,
	// a full metrics snapshot, and the structural gauges are written as a
	// JSON crash file into this directory (boxinspect -crash reads them).
	// When several stores share one registry, set CrashDir on one of them.
	CrashDir string
	// CrashRing is how many recent op events the flight recorder retains
	// (default 64).
	CrashRing int

	// SlowOpThreshold enables the slow-op log: span recording is turned on
	// for the store's registry, and any operation whose wall time meets the
	// threshold has its full span tree captured (surfaced via /debug/spans
	// and flight-recorder crash dumps) and logged via slog at Warn. Zero
	// keeps span recording off; phase histograms are always on either way.
	SlowOpThreshold time.Duration
}

// Store is a dynamic order-based labeling service for one XML document.
type Store struct {
	opts       Options
	store      *pager.Store
	labeler    order.Labeler
	cache      *reflog.Cache
	reg        *obs.Registry
	schemeName string
	schemeIdx  int // this scheme's ledger row in reg
	flight     *obs.FlightRecorder

	// deferred makes mutators return before their group-commit ticket
	// resolves; the caller collects it with TakeTicket (SyncStore waits
	// after releasing its write lock, so concurrent writers coalesce).
	deferred bool
	ticket   *pager.CommitTicket

	// Phase-attribution state, guarded by the exclusive writer section:
	// extraNs accumulates durable()'s instrumented sections (meta_persist,
	// fsync_wait) so end() can subtract them from the residual structure
	// phase; pendingLockWait is the write-lock acquisition wait SyncStore
	// parked for the next begin() to attribute; lastOp is the most recent
	// exclusive op, for attributing deferred ticket waits after end().
	extraNs         int64
	pendingLockWait int64
	lastOp          obs.Op

	// deg is non-nil in read-only degraded mode (see resilience.go).
	deg atomic.Pointer[degradedInfo]
}

// Open creates an empty Store.
func Open(opts Options) (*Store, error) {
	if opts.BlockSize == 0 {
		opts.BlockSize = pager.DefaultBlockSize
	}
	backend := opts.Backend
	if backend == nil {
		backend = pager.NewMemBackend(opts.BlockSize)
	}
	if backend.BlockSize() != opts.BlockSize {
		return nil, fmt.Errorf("core: backend block size %d != %d", backend.BlockSize(), opts.BlockSize)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	for _, h := range opts.TraceHooks {
		reg.AddHook(h)
	}
	var flight *obs.FlightRecorder
	if opts.CrashDir != "" {
		flight = obs.NewFlightRecorder(reg, opts.CrashDir, opts.CrashRing)
		reg.AddHook(flight)
	}
	reg.SetScheme(opts.Scheme.String())
	if opts.SlowOpThreshold > 0 {
		reg.Tracer().Start(obs.TraceOptions{SlowOp: opts.SlowOpThreshold, SlowLogger: slog.Default()})
	}

	popts := []pager.Option{pager.WithObserver(reg)}
	if opts.CacheBlocks > 0 {
		popts = append(popts, pager.WithCache(opts.CacheBlocks))
	}
	if opts.Retry != nil {
		popts = append(popts, pager.WithRetry(*opts.Retry))
	}
	store := pager.NewStore(backend, popts...)

	var labeler order.Labeler
	switch opts.Scheme {
	case SchemeWBox, SchemeWBoxO:
		variant := wbox.Basic
		if opts.Scheme == SchemeWBoxO {
			variant = wbox.PairOptimized
		}
		p, err := wbox.NewParams(opts.BlockSize, variant, opts.Ordinal)
		if err != nil {
			return nil, err
		}
		l, err := wbox.New(store, p)
		if err != nil {
			return nil, err
		}
		labeler = l
	case SchemeBBox:
		p, err := bbox.NewParams(opts.BlockSize, opts.Ordinal, opts.RelaxedFanout)
		if err != nil {
			return nil, err
		}
		l, err := bbox.New(store, p)
		if err != nil {
			return nil, err
		}
		labeler = l
	case SchemeNaive:
		l, err := naive.New(store, naive.Config{K: opts.NaiveK})
		if err != nil {
			return nil, err
		}
		labeler = l
	default:
		return nil, fmt.Errorf("core: unknown scheme %v", opts.Scheme)
	}

	if opts.Durable {
		if _, ok := backend.(pager.TxBackend); !ok {
			return nil, errors.New("core: Durable requires a backend with atomic batches (pager.TxBackend)")
		}
		if _, ok := backend.(pager.MetaRooter); !ok {
			return nil, errors.New("core: Durable requires a backend that persists metadata (pager.MetaRooter)")
		}
		if _, ok := labeler.(metaMarshaler); !ok {
			return nil, fmt.Errorf("core: scheme %v cannot persist metadata", opts.Scheme)
		}
	}
	if opts.Durability != nil {
		if !opts.Durable {
			return nil, errors.New("core: Durability (group commit) requires Durable")
		}
		gs, ok := backend.(interface {
			StartGroupCommit(pager.Durability) error
			GroupCommitEnabled() bool
		})
		if !ok {
			return nil, errors.New("core: Durability requires a backend with group commit (pager.FileBackend)")
		}
		if !gs.GroupCommitEnabled() {
			if err := gs.StartGroupCommit(*opts.Durability); err != nil {
				return nil, err
			}
		}
	}

	s := &Store{opts: opts, store: store, labeler: labeler, reg: reg, schemeName: opts.Scheme.String(), flight: flight}
	s.schemeIdx = reg.SchemeIndex(s.schemeName)
	if opts.Caching != CachingOff {
		k := 0
		if opts.Caching == CachingLogged {
			k = opts.LogK
			if k <= 0 {
				k = 64
			}
		}
		s.cache = reflog.NewCache(labeler, reflog.NewLog(k))
		s.cache.SetObserver(reg)
	}
	return s, nil
}

// Scheme reports the scheme in use.
func (s *Store) Scheme() Scheme { return s.opts.Scheme }

// Labeler exposes the underlying scheme for advanced use.
func (s *Store) Labeler() order.Labeler { return s.labeler }

// Cache returns the caching layer, or nil when caching is off.
func (s *Store) Cache() *reflog.Cache { return s.cache }

// EnableOrdinalCache attaches a caching+logging layer to the store's
// ordinal labels (requires Ordinal support) with a logK-entry modification
// log, and returns it. Ordinal effects are exact for every operation —
// including bulk subtree insert/delete — so replay hit rates are typically
// even higher than for regular labels.
func (s *Store) EnableOrdinalCache(logK int) (*reflog.Cache, error) {
	if !s.opts.Ordinal {
		return nil, order.ErrNoOrdinal
	}
	if logK < 0 {
		logK = 0
	}
	c := reflog.NewOrdinalCache(s.labeler, reflog.NewLog(logK))
	c.SetObserver(s.reg)
	return c, nil
}

// FlightRecorder returns the flight recorder installed via
// Options.CrashDir, or nil when crash dumping is off.
func (s *Store) FlightRecorder() *obs.FlightRecorder { return s.flight }

// MetricsRegistry returns the registry this store reports into (never
// nil). Callers can expose it over HTTP with obs.Handler or install trace
// hooks after the fact.
func (s *Store) MetricsRegistry() *obs.Registry { return s.reg }

// Metrics returns a point-in-time snapshot of every metric the store has
// recorded: per-operation counts, latency and I/O-delta histograms, and
// the structural counters.
func (s *Store) Metrics() obs.Snapshot { return s.reg.Snapshot() }

// CheckLedger verifies the cost-ledger conservation invariant against this
// store's registry: per-(scheme, op) attributions must sum to the global
// kind totals, which must agree with the structural counters. With
// strict=true (valid only at quiescence — no operation in flight) it
// additionally cross-checks the ledger's block I/O totals against the
// pager's own counters, which holds as long as ResetStats was never called
// and no other store shares the registry.
func (s *Store) CheckLedger(strict bool) error {
	if err := s.reg.CheckLedger(strict); err != nil {
		return err
	}
	if strict {
		lr, lw := s.reg.LedgerIO()
		st := s.store.Stats()
		if lr != st.Reads || lw != st.Writes {
			return fmt.Errorf("core: ledger I/O (%d reads, %d writes) != pager I/O (%d reads, %d writes)",
				lr, lw, st.Reads, st.Writes)
		}
	}
	return nil
}

// opMeasure carries one in-flight operation's measurement state between
// begin and end: the registry context, the pager phase-counter snapshot
// (for the residual "structure" phase), and the root span when tracing.
type opMeasure struct {
	ctx  obs.OpCtx
	op   obs.Op
	excl bool // runs in the exclusive writer section
	ph   pager.PhaseNanos
	sp   obs.Span
}

// begin opens a per-operation measurement against the store's registry,
// snapshotting the pager's cumulative I/O counters and phase time.
//
// Every operation except a lookup on the shared read path runs in the
// exclusive writer section (the single-goroutine contract, or under a
// SyncStore write lock), so installing it as the registry's writer op is
// race-free: concurrent shared-mode readers are statically lookups and
// never touch the slot.
func (s *Store) begin(op obs.Op) opMeasure {
	st := s.store.Stats()
	m := opMeasure{op: op, excl: op != obs.OpLookup || !s.store.Shared()}
	if m.excl {
		s.reg.SetWriterCell(s.schemeIdx, op)
		if w := s.pendingLockWait; w != 0 {
			s.pendingLockWait = 0
			s.reg.ObservePhase(op, obs.PhaseLockWaitWrite, time.Duration(w))
		}
	}
	if tr := s.reg.Tracer(); tr.Enabled() {
		m.sp = tr.StartOp(s.schemeName, op, !m.excl)
	}
	m.ph = s.store.PhaseStats()
	m.ctx = s.reg.Begin(s.schemeName, op, st.Reads, st.Writes)
	return m
}

// end closes a measurement: the I/O accumulated since begin is the
// operation's charge, and the wall time not covered by any instrumented
// phase (backend I/O, commit, meta persist, ticket wait) is attributed to
// the residual "structure" phase — in-memory structure work. The residual
// is exact when operations run sequentially; under concurrent shared-mode
// readers the pager's phase counters are global, so a writer overlapping
// readers under-counts its residual (clamped at zero), never over-counts
// a phase.
func (s *Store) end(m opMeasure, err error) {
	st := s.store.Stats()
	d := s.reg.End(m.ctx, st.Reads, st.Writes, err)
	delta := s.store.PhaseStats().Sub(m.ph)
	var extra int64
	if m.excl {
		extra = s.extraNs
		s.extraNs = 0
		s.lastOp = m.op
		s.reg.ClearWriterOp()
	}
	resid := int64(d) - delta.Total() - extra
	if resid < 0 {
		resid = 0
	}
	s.reg.ObservePhase(m.op, obs.PhaseStructure, time.Duration(resid))
	m.sp.End(err)
}

// notePhase attributes one instrumented section inside durable() to the
// current writer op's phase histograms, and accumulates it into extraNs so
// end() can subtract it from the residual structure phase.
func (s *Store) notePhase(ph obs.Phase, start time.Time) {
	d := time.Since(start)
	s.extraNs += int64(d)
	s.reg.ObservePhase(s.reg.WriterOp(), ph, d)
	if tr := s.reg.Tracer(); tr.Enabled() {
		tr.RecordAuto(false, ph.String(), start, d)
	}
}

// durable runs one mutating operation. With Options.Durable it opens an
// outer pager operation, runs fn, re-persists the metadata blob, and ends
// the operation — so the structural writes, the metadata, and the meta
// root all land in one atomic backend transaction. Without Durable it
// just runs fn.
func (s *Store) durable(fn func() error) error {
	if err := s.readOnlyErr(); err != nil {
		return err
	}
	if !s.opts.Durable {
		err := fn()
		s.noteFaults(err)
		return err
	}
	s.store.BeginOp()
	err := fn()
	if err == nil {
		t0 := time.Now()
		err = s.persistMeta()
		s.notePhase(obs.PhaseMetaPersist, t0)
	}
	if e := s.store.EndOp(); err == nil {
		err = e
	}
	if t := s.store.TakeTicket(); t != nil {
		if s.deferred {
			s.ticket = t
		} else {
			t0 := time.Now()
			werr := t.Wait()
			s.notePhase(obs.PhaseFsyncWait, t0)
			if err == nil {
				err = werr
			}
		}
	}
	s.noteFaults(err)
	return err
}

// SetDeferredDurability controls when mutators wait for their group-commit
// ticket. Off (the default), every mutator blocks until its transaction is
// durable — same semantics as synchronous commit. On, mutators return once
// the transaction is queued and the caller is responsible for collecting
// the ticket with TakeTicket; SyncStore turns this on and waits after
// releasing its write lock, so concurrent writers share one fsync.
func (s *Store) SetDeferredDurability(on bool) { s.deferred = on }

// TakeTicket returns (and clears) the commit ticket of the most recent
// deferred mutation, or nil. Nil tickets Wait as immediate success.
func (s *Store) TakeTicket() *pager.CommitTicket {
	t := s.ticket
	s.ticket = nil
	return t
}

// Stats returns the block I/O counters accumulated so far.
func (s *Store) Stats() pager.IOStats { return s.store.Stats() }

// ResetStats zeroes the I/O counters.
func (s *Store) ResetStats() { s.store.ResetStats() }

// Blocks reports the number of allocated blocks (structure + LIDF).
func (s *Store) Blocks() uint64 { return s.store.NumBlocks() }

// Count, Height, LabelBits, and the update operations delegate to the
// scheme.

func (s *Store) Count() uint64  { return s.labeler.Count() }
func (s *Store) Height() int    { return s.labeler.Height() }
func (s *Store) LabelBits() int { return s.labeler.LabelBits() }

// Lookup returns the current label of lid.
func (s *Store) Lookup(lid order.LID) (order.Label, error) {
	c := s.begin(obs.OpLookup)
	v, err := s.labeler.Lookup(lid)
	s.end(c, err)
	return v, err
}

// LookupSpan returns both labels of an element. On W-BOX-O this costs two
// I/Os total (LIDF + one leaf); elsewhere it is two lookups.
func (s *Store) LookupSpan(e order.ElemLIDs) (query.Span, error) {
	c := s.begin(obs.OpLookup)
	sp, err := s.lookupSpan(e)
	s.end(c, err)
	return sp, err
}

func (s *Store) lookupSpan(e order.ElemLIDs) (query.Span, error) {
	if wl, ok := s.labeler.(*wbox.Labeler); ok {
		st, en, err := wl.LookupPair(e.Start, e.End)
		if err != nil {
			return query.Span{}, err
		}
		return query.Span{Start: st, End: en}, nil
	}
	if bl, ok := s.labeler.(*bbox.Labeler); ok {
		st, en, err := bl.LookupPair(e.Start, e.End)
		if err != nil {
			return query.Span{}, err
		}
		return query.Span{Start: st, End: en}, nil
	}
	st, err := s.labeler.Lookup(e.Start)
	if err != nil {
		return query.Span{}, err
	}
	en, err := s.labeler.Lookup(e.End)
	if err != nil {
		return query.Span{}, err
	}
	return query.Span{Start: st, End: en}, nil
}

// InsertElementBefore inserts a new element immediately before the tag
// identified by lidOld (previous sibling if lidOld is a start label, last
// child if it is an end label).
func (s *Store) InsertElementBefore(lidOld order.LID) (order.ElemLIDs, error) {
	c := s.begin(obs.OpInsert)
	var e order.ElemLIDs
	err := s.durable(func() (err error) {
		e, err = s.labeler.InsertElementBefore(lidOld)
		return err
	})
	s.end(c, err)
	return e, err
}

// InsertFirstElement bootstraps an empty document.
func (s *Store) InsertFirstElement() (order.ElemLIDs, error) {
	c := s.begin(obs.OpInsert)
	var e order.ElemLIDs
	err := s.durable(func() (err error) {
		e, err = s.labeler.InsertFirstElement()
		return err
	})
	s.end(c, err)
	return e, err
}

// Delete removes one label.
func (s *Store) Delete(lid order.LID) error {
	c := s.begin(obs.OpDelete)
	err := s.durable(func() error {
		return s.labeler.Delete(lid)
	})
	s.end(c, err)
	return err
}

// DeleteElement removes both labels of an element (its children become
// children of its parent).
func (s *Store) DeleteElement(e order.ElemLIDs) error {
	c := s.begin(obs.OpDelete)
	err := s.durable(func() error {
		if err := s.labeler.Delete(e.Start); err != nil {
			return err
		}
		return s.labeler.Delete(e.End)
	})
	s.end(c, err)
	return err
}

// DeleteSubtree removes an element and all its descendants.
func (s *Store) DeleteSubtree(e order.ElemLIDs) error {
	c := s.begin(obs.OpSubtreeDelete)
	err := s.durable(func() error {
		return s.labeler.DeleteSubtree(e.Start, e.End)
	})
	s.end(c, err)
	return err
}

// InsertSubtreeBefore bulk-inserts a whole XML subtree immediately before
// the tag identified by lidOld.
func (s *Store) InsertSubtreeBefore(lidOld order.LID, tree *xmlgen.Tree) ([]order.ElemLIDs, error) {
	c := s.begin(obs.OpSubtreeInsert)
	var elems []order.ElemLIDs
	err := s.durable(func() (err error) {
		elems, err = s.labeler.InsertSubtreeBefore(lidOld, tree.TagStream())
		return err
	})
	s.end(c, err)
	return elems, err
}

// Compare orders two tags by document position, returning -1, 0 or +1.
// On B-BOX it uses the bottom-up lowest-common-ancestor walk of Section 5,
// which costs fewer I/Os than two lookups when the tags are close; on the
// other schemes it compares the two label values.
func (s *Store) Compare(a, b order.LID) (int, error) {
	c := s.begin(obs.OpLookup)
	v, err := s.compare(a, b)
	s.end(c, err)
	return v, err
}

func (s *Store) compare(a, b order.LID) (int, error) {
	if bl, ok := s.labeler.(*bbox.Labeler); ok {
		return bl.CompareLIDs(a, b)
	}
	la, err := s.labeler.Lookup(a)
	if err != nil {
		return 0, err
	}
	lb, err := s.labeler.Lookup(b)
	if err != nil {
		return 0, err
	}
	switch {
	case la < lb:
		return -1, nil
	case la > lb:
		return 1, nil
	default:
		return 0, nil
	}
}

// OrdinalLookup returns the exact document position of a tag (requires
// Ordinal support).
func (s *Store) OrdinalLookup(lid order.LID) (uint64, error) {
	c := s.begin(obs.OpLookup)
	v, err := s.labeler.OrdinalLookup(lid)
	s.end(c, err)
	return v, err
}

// CheckInvariants validates the structure (used by tests and boxload).
func (s *Store) CheckInvariants() error {
	c := s.begin(obs.OpCheck)
	err := s.labeler.CheckInvariants()
	s.end(c, err)
	return err
}

// Document couples a Store with the per-element LIDs of a loaded tree,
// giving name-aware access for query processing.
type Document struct {
	Store *Store
	Tree  *xmlgen.Tree
	Elems []order.ElemLIDs // indexed by preorder element index
}

// Load bulk-loads tree into the store (which must be empty).
func (s *Store) Load(tree *xmlgen.Tree) (*Document, error) {
	if tree == nil || tree.Root == nil {
		return nil, errors.New("core: empty tree")
	}
	c := s.begin(obs.OpBulkLoad)
	var elems []order.ElemLIDs
	err := s.durable(func() (err error) {
		elems, err = s.labeler.BulkLoad(tree.TagStream())
		return err
	})
	s.end(c, err)
	if err != nil {
		return nil, err
	}
	return &Document{Store: s, Tree: tree, Elems: elems}, nil
}

// LabeledElems materializes (name, span) pairs for every element, in
// document order — the input shape for the query package.
func (d *Document) LabeledElems() ([]query.Elem, error) {
	nodes := d.Tree.Nodes()
	out := make([]query.Elem, len(nodes))
	for i, n := range nodes {
		span, err := d.Store.LookupSpan(d.Elems[i])
		if err != nil {
			return nil, err
		}
		out[i] = query.Elem{Name: n.Name, Span: span}
	}
	query.SortByStart(out)
	return out, nil
}

// SpansOf returns the spans of the elements with the given name.
func (d *Document) SpansOf(name string) ([]query.Span, error) {
	nodes := d.Tree.Nodes()
	var out []query.Span
	for i, n := range nodes {
		if n.Name != name {
			continue
		}
		span, err := d.Store.LookupSpan(d.Elems[i])
		if err != nil {
			return nil, err
		}
		out = append(out, span)
	}
	query.SortSpansByStart(out)
	return out, nil
}
