package core

import (
	"bytes"
	"errors"
	"fmt"

	"boxes/internal/obs"
	"boxes/internal/pager"
)

// ErrReadOnly is returned by every mutating operation (and Save) once the
// store has entered read-only degraded mode: a permanent write fault or
// write-path corruption was detected, so further mutations cannot be made
// durable. Lookups keep serving from the committed state. Use errors.Is to
// test for it; DegradedCause reports the underlying fault.
var ErrReadOnly = errors.New("core: store is in read-only degraded mode")

// metaHeaderLen is the fixed prefix persistMeta writes before the scheme's
// own metadata: magic (8) + scheme (1) + block size (4) + ordinal (1) +
// relaxed fan-out (1) + naive k (4).
const metaHeaderLen = 19

type degradedInfo struct {
	cause error
}

// Degraded reports whether the store is in read-only degraded mode.
func (s *Store) Degraded() bool { return s.deg.Load() != nil }

// DegradedCause returns the fault that flipped the store read-only, or nil.
func (s *Store) DegradedCause() error {
	if d := s.deg.Load(); d != nil {
		return d.cause
	}
	return nil
}

// ClearDegraded returns the store to read-write mode and clears the pager's
// write-fault latch. Call it only after the underlying device has been
// repaired (or the store reopened over a healthy backend): the in-memory
// state was rolled back to the last committed metadata on entry, so leaving
// degraded mode resumes exactly from the durable prefix.
func (s *Store) ClearDegraded() {
	s.deg.Store(nil)
	s.store.ClearWriteFault()
}

// readOnlyErr is the mutation gate: nil in normal operation, a typed
// ErrReadOnly (carrying the cause) once degraded.
func (s *Store) readOnlyErr() error {
	if d := s.deg.Load(); d != nil {
		return fmt.Errorf("%w (cause: %v)", ErrReadOnly, d.cause)
	}
	return nil
}

// poisoner is the backend facet reporting a poisoned commit path (see
// pager.FileBackend.Poisoned / pager.ErrPoisoned).
type poisoner interface{ Poisoned() error }

// noteFaults inspects the pager's write-fault latch, the backend's poison
// state, and the operation's own error after a mutation, and applies the
// failure-semantics contract (DESIGN.md §13):
//
//   - permanent write fault → read-only degraded mode, labeler rolled
//     back to the committed metadata;
//   - poisoned backend (failed fsync, or a post-durability-point commit
//     failure) → degraded mode WITHOUT the metadata rollback: the
//     poisoned transaction's commit record may be (or is) durable in the
//     WAL, so the in-memory state matching it is the best available view
//     and a rollback would re-read meta blocks the apply never wrote;
//     reopening the store resolves the ambiguity from the log;
//   - write-path corruption → degraded mode with rollback;
//   - any other failed durable op (ENOSPC on the WAL append, a transient
//     commit failure) → clean abort: the in-memory labeler rolls back to
//     the committed metadata and the store STAYS WRITABLE — the pager
//     already restored its header to the pre-op snapshot, so the next op
//     runs against exactly the committed prefix.
//
// It must run in the writer's exclusive section (it rolls the labeler
// back to committed state).
func (s *Store) noteFaults(opErr error) {
	if wf := s.store.WriteFault(); wf != nil {
		s.enterDegraded(wf)
		return
	}
	if p, ok := unwrapBackend(s.store.Backend()).(poisoner); ok {
		if perr := p.Poisoned(); perr != nil {
			s.enterDegraded(perr)
			return
		}
	}
	if opErr == nil {
		return
	}
	if errors.Is(opErr, pager.ErrCorrupt) {
		s.enterDegraded(opErr)
		return
	}
	if s.opts.Durable {
		s.abortToCommitted(opErr)
	}
}

// abortToCommitted rolls the in-memory labeler back to the last committed
// metadata after a durable op failed without degrading the store (ENOSPC,
// a transient commit fault): the pager restored its header to the pre-op
// snapshot, so memory must follow or lookups would serve state that never
// became durable. The store stays writable. If even the rollback fails,
// memory and disk cannot be reconciled and the store degrades after all.
func (s *Store) abortToCommitted(cause error) {
	s.store.InvalidateCache()
	if err := s.restoreCommittedMeta(); err != nil {
		s.enterDegraded(fmt.Errorf("op abort: %v; metadata rollback also failed: %w", cause, err))
		return
	}
	if s.cache != nil {
		s.cache.Log().DropAll()
	}
	s.reg.Inc(obs.CtrCoreOpAborts)
}

// enterDegraded flips the store read-only (first caller wins) and rolls the
// in-memory labeler back to the last committed metadata, so lookups answer
// from the durable prefix rather than from a mutation that half-applied
// before its commit failed. The rollback is best-effort: if the committed
// blob cannot be re-read the in-memory state is kept as is (mutations are
// rejected either way). Any caching layer's modification log is dropped so
// cached labels re-validate through full lookups.
//
// When the cause is a poisoned backend (pager.ErrPoisoned) the rollback
// is skipped deliberately: the poisoned transaction's commit record is —
// or may be — durable in the WAL, so the in-memory state already matches
// what a reopen will recover (or at worst runs one resolved-at-reopen
// transaction ahead), while rolling back would re-read meta blocks the
// cut-short apply never wrote in place.
func (s *Store) enterDegraded(cause error) {
	if !s.deg.CompareAndSwap(nil, &degradedInfo{cause: cause}) {
		return
	}
	s.reg.Inc(obs.CtrCoreDegraded)
	// A group commit that aborted asynchronously (after its EndOp returned)
	// may have left pre-abort images in the pager's LRU cache.
	s.store.InvalidateCache()
	if s.opts.Durable && !errors.Is(cause, pager.ErrPoisoned) {
		if err := s.restoreCommittedMeta(); err != nil {
			s.deg.Store(&degradedInfo{cause: fmt.Errorf("%v; metadata rollback also failed: %v", cause, err)})
		}
	}
	if s.cache != nil {
		s.cache.Log().DropAll()
	}
}

// restoreCommittedMeta re-reads the last committed metadata blob and
// restores the labeler from it, discarding in-memory effects of operations
// whose commit never became durable.
func (s *Store) restoreCommittedMeta() error {
	mr, ok := s.store.Backend().(pager.MetaRooter)
	if !ok {
		return errors.New("backend cannot persist metadata")
	}
	mm, ok := s.labeler.(metaMarshaler)
	if !ok {
		return fmt.Errorf("scheme %v cannot restore metadata", s.opts.Scheme)
	}
	head, err := mr.MetaRoot()
	if err != nil {
		return err
	}
	if head == pager.NilBlock {
		return errors.New("no committed metadata")
	}
	blob, err := s.store.ReadBlob(head)
	if err != nil {
		return err
	}
	if len(blob) < metaHeaderLen || !bytes.Equal(blob[:8], metaMagic[:]) {
		return errors.New("committed metadata is corrupt")
	}
	return mm.RestoreMeta(blob[metaHeaderLen:])
}

// unwrapBackend peels fault-injection wrappers off a backend, reaching the
// device that actually persists blocks.
func unwrapBackend(b pager.Backend) pager.Backend {
	for {
		switch w := b.(type) {
		case *pager.FaultBackend:
			b = w.Inner
		case *pager.CrashBackend:
			b = w.Inner
		case *pager.FlakyBackend:
			b = w.Inner
		default:
			return b
		}
	}
}

// Backup writes a consistent snapshot of the store to a fresh file at path
// (plus .crc/.wal sidecars); OpenFile + OpenExisting on that path resumes
// an identical store — restore is a plain file copy, no replay needed. The
// store must be file-backed. A durable store's metadata is already
// committed per operation; a non-durable store Saves first so the snapshot
// is resumable. The caller must exclude concurrent mutators (SyncStore's
// Backup does); the group-commit committer may keep running.
func (s *Store) Backup(path string) error {
	if !s.opts.Durable {
		if err := s.Save(); err != nil {
			return err
		}
	}
	return s.backupNoSave(path)
}

// backupNoSave snapshots without the non-durable Save (SyncStore performs
// that under its write lock before taking the read-locked copy).
func (s *Store) backupNoSave(path string) error {
	fb, ok := unwrapBackend(s.store.Backend()).(*pager.FileBackend)
	if !ok {
		return errors.New("core: backup requires a file-backed store")
	}
	return fb.BackupTo(path)
}

// NewScrubber builds an online scrubber over the store's blocks (see
// pager.Scrubber): checksum verification at a configurable pace, quarantine
// of corrupt blocks, optional repair from the WAL tail. The store must be
// file-backed with checksums. The caller starts and stops it; for a store
// shared via SyncStore use SyncStore.StartScrubber, which wires the read
// lock in as the scrub guard.
func (s *Store) NewScrubber(cfg pager.ScrubConfig) (*pager.Scrubber, error) {
	return s.store.NewScrubber(cfg)
}

// QuarantinedBlocks lists blocks the pager refuses to serve (corrupt and
// not yet repaired or rewritten).
func (s *Store) QuarantinedBlocks() []pager.BlockID {
	return s.store.QuarantinedBlocks()
}

// Close releases the store: pending group commits are drained and the
// backend is closed. Durable stores are consistent at every operation
// boundary; non-durable stores must Save first to be resumable.
func (s *Store) Close() error {
	return s.store.Close()
}
