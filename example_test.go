package boxes_test

import (
	"fmt"
	"log"
	"strings"

	"boxes"
)

// ExampleOpen labels a small document and checks an ancestor relationship
// with two integer comparisons.
func ExampleOpen() {
	st, err := boxes.Open(boxes.Options{Scheme: boxes.WBox})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := boxes.ParseXML(strings.NewReader(
		"<site><regions><item/><item/></regions><people/></site>"))
	if err != nil {
		log.Fatal(err)
	}
	doc, err := st.Load(tree)
	if err != nil {
		log.Fatal(err)
	}
	site, _ := st.LookupSpan(doc.Elems[0])
	regions, _ := st.LookupSpan(doc.Elems[1])
	people, _ := st.LookupSpan(doc.Elems[4])
	fmt.Println("site contains regions:", site.Contains(regions))
	fmt.Println("regions contains people:", regions.Contains(people))
	// Output:
	// site contains regions: true
	// regions contains people: false
}

// ExampleContainmentJoin joins ancestors and descendants through their
// label spans only.
func ExampleContainmentJoin() {
	st, err := boxes.Open(boxes.Options{Scheme: boxes.BBox})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := boxes.ParseXML(strings.NewReader(
		"<doc><a><b/><b/></a><a/><b/></doc>"))
	if err != nil {
		log.Fatal(err)
	}
	doc, err := st.Load(tree)
	if err != nil {
		log.Fatal(err)
	}
	as, _ := doc.SpansOf("a")
	bs, _ := doc.SpansOf("b")
	pairs := boxes.ContainmentJoin(as, bs)
	fmt.Printf("%d a-elements, %d b-elements, %d (a,b) nestings\n",
		len(as), len(bs), len(pairs))
	// Output:
	// 2 a-elements, 3 b-elements, 2 (a,b) nestings
}

// ExampleStore_InsertElementBefore shows that immutable LIDs keep
// resolving while labels shift underneath them.
func ExampleStore_InsertElementBefore() {
	st, err := boxes.Open(boxes.Options{Scheme: boxes.WBox})
	if err != nil {
		log.Fatal(err)
	}
	root, err := st.InsertFirstElement()
	if err != nil {
		log.Fatal(err)
	}
	// Two children, appended in order (insert before the root's end tag).
	first, _ := st.InsertElementBefore(root.End)
	second, _ := st.InsertElementBefore(root.End)
	a, _ := st.LookupSpan(first)
	b, _ := st.LookupSpan(second)
	fmt.Println("first precedes second:", a.Before(b))
	// A new previous sibling of `first` shifts labels, but the LIDs held
	// above still resolve to the current, consistent values.
	if _, err := st.InsertElementBefore(first.Start); err != nil {
		log.Fatal(err)
	}
	a, _ = st.LookupSpan(first)
	b, _ = st.LookupSpan(second)
	fmt.Println("still precedes after relabeling:", a.Before(b))
	// Output:
	// first precedes second: true
	// still precedes after relabeling: true
}

// ExampleMatchPattern runs a branching tree pattern over labeled elements.
func ExampleMatchPattern() {
	st, err := boxes.Open(boxes.Options{Scheme: boxes.WBoxO})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := boxes.ParseXML(strings.NewReader(`
		<auctions>
			<auction><bidder/><seller/></auction>
			<auction><seller/></auction>
			<auction><bidder/></auction>
		</auctions>`))
	if err != nil {
		log.Fatal(err)
	}
	doc, err := st.Load(tree)
	if err != nil {
		log.Fatal(err)
	}
	elems, err := doc.LabeledElems()
	if err != nil {
		log.Fatal(err)
	}
	pt, err := boxes.ParsePattern("//auction[/bidder][/seller]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("auctions with both a bidder and a seller:", len(boxes.MatchPattern(elems, pt)))
	// Output:
	// auctions with both a bidder and a seller: 1
}
