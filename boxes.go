// Package boxes is a Go implementation of BOXes — the I/O-efficient data
// structures for maintaining order-based labels over dynamic XML documents
// from Silberstein, He, Yi & Yang, "BOXes: Efficient Maintenance of
// Order-Based Labeling for Dynamic XML Data" (ICDE 2005).
//
// Every XML element carries a pair of integer labels (start, end) ordered
// exactly like the element's tags in the document, so that ancestorship is
// a pair of integer comparisons. This package maintains those labels as
// the document changes:
//
//   - WBox — a weight-balanced B-tree storing the labels: constant-cost
//     lookups (2 block I/Os), logarithmic amortized updates.
//   - WBoxO — the pair-optimized variant that answers start+end lookups
//     with a single structure I/O.
//   - BBox — a keyless back-linked B-tree storing no label values at all:
//     constant amortized updates, logarithmic lookups.
//   - Naive — the classic gap-labeling baseline with global relabeling,
//     included for comparison.
//
// Labels are always reached through immutable label IDs (LIDs), allocated
// in a compact heap file, so references to labels stored in other indexes
// never need updating. A caching/logging layer can repair cached label
// values without I/O (read-heavy workloads).
//
// Quick start:
//
//	st, _ := boxes.Open(boxes.Options{Scheme: boxes.WBox})
//	doc, _ := st.Load(boxes.GenerateXMark(100_000, 1))
//	span, _ := st.LookupSpan(doc.Elems[0])
package boxes

import (
	"io"
	"net/http"

	"boxes/internal/core"
	"boxes/internal/faults"
	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/pager"
	"boxes/internal/query"
	"boxes/internal/reflog"
	"boxes/internal/xmlgen"
)

// Re-exported core types. See the internal/core package for details.
type (
	// Options configures a labeling Store.
	Options = core.Options
	// Store maintains the dynamic labeling of one document.
	Store = core.Store
	// Document couples a Store with a loaded tree's element LIDs.
	Document = core.Document
	// Scheme selects the labeling structure.
	Scheme = core.Scheme
	// Caching selects the lookup acceleration mode.
	Caching = core.Caching
	// SyncStore is a lock-guarded Store safe for concurrent use: lookups
	// run shared, mutators exclusive.
	SyncStore = core.SyncStore
	// BatchOp is one operation of a Store.ApplyBatch batch.
	BatchOp = core.Op
	// BatchOpKind selects a BatchOp's operation.
	BatchOpKind = core.OpKind
	// BatchOpResult is the positional outcome of one BatchOp.
	BatchOpResult = core.OpResult
	// Durability tunes WAL group commit (Options.Durability): Every is the
	// target group size, MaxDelay the longest a queued transaction waits
	// for company before its group flushes anyway.
	Durability = pager.Durability
	// CommitTicket resolves when a queued transaction is durable.
	CommitTicket = pager.CommitTicket
	// RetryPolicy bounds transient-I/O retries (Options.Retry): attempt
	// budget, exponential backoff with jitter.
	RetryPolicy = faults.RetryPolicy
	// ScrubConfig paces an online Scrubber (batch size, interval, repair).
	ScrubConfig = pager.ScrubConfig
	// Scrubber walks a store's blocks in the background verifying
	// checksums; see SyncStore.StartScrubber.
	Scrubber = pager.Scrubber
)

// ErrReadOnly is returned by mutations once a permanent write fault has
// flipped the store into read-only degraded mode; lookups keep serving the
// committed state. Test with errors.Is.
var ErrReadOnly = core.ErrReadOnly

// ErrCorrupt matches (via errors.Is) every checksum or quarantine failure
// the block layer reports.
var ErrCorrupt = pager.ErrCorrupt

// DefaultRetryPolicy is a sensible transient-retry configuration: 4
// attempts, 1ms initial backoff doubling to a 50ms cap, half-range jitter.
func DefaultRetryPolicy() RetryPolicy { return faults.DefaultRetryPolicy() }

// Batch operation kinds for Store.ApplyBatch / SyncStore.ApplyBatch.
const (
	BatchInsertBefore  = core.OpInsertBefore
	BatchInsertFirst   = core.OpInsertFirst
	BatchInsertSubtree = core.OpInsertSubtree
	BatchDelete        = core.OpDelete
	BatchDeleteElement = core.OpDeleteElement
	BatchDeleteSubtree = core.OpDeleteSubtree
	BatchLookup        = core.OpLookup
	BatchLookupSpan    = core.OpLookupSpan
	BatchOrdinal       = core.OpOrdinalLookup
)

// NewSyncStore wraps st for concurrent use; the unwrapped Store must no
// longer be used directly.
func NewSyncStore(st *Store) *SyncStore { return core.NewSyncStore(st) }

// Labeling schemes.
const (
	WBox  = core.SchemeWBox
	WBoxO = core.SchemeWBoxO
	BBox  = core.SchemeBBox
	Naive = core.SchemeNaive
)

// Caching modes (Section 6 of the paper).
const (
	CachingOff    = core.CachingOff
	CachingBasic  = core.CachingBasic
	CachingLogged = core.CachingLogged
)

// Identifier and label types.
type (
	// LID is an immutable label identifier; safe to copy into indexes.
	LID = order.LID
	// Label is a dynamic label value.
	Label = order.Label
	// ElemLIDs is the (start, end) LID pair of one element.
	ElemLIDs = order.ElemLIDs
	// Span is an element's (start, end) label pair, the unit of query
	// processing.
	Span = query.Span
	// Elem is a named, labeled element (input to twig matching).
	Elem = query.Elem
	// Twig is a parsed path pattern.
	Twig = query.Twig
	// Pair is one containment-join result.
	Pair = query.Pair
	// IOStats counts block reads and writes.
	IOStats = pager.IOStats
	// Cache is the Section 6 caching/logging lookup layer.
	Cache = reflog.Cache
	// CacheRef is an augmented label reference: LID + cached value +
	// last-cached timestamp.
	CacheRef = reflog.Ref
)

// Observability types. Every Store reports per-operation latency and
// I/O-delta histograms plus structural counters (splits, rebuilds,
// relabels, cache hits) into a Metrics registry; see Store.Metrics,
// Store.MetricsRegistry, and MetricsHandler.
type (
	// Metrics is the registry a Store reports into. Pass one via
	// Options.Metrics to aggregate several stores into one endpoint.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time copy of every recorded metric.
	MetricsSnapshot = obs.Snapshot
	// TraceHook receives a structured event around every operation.
	TraceHook = obs.TraceHook
	// TraceEvent is the per-operation payload delivered to hooks.
	TraceEvent = obs.Event
	// RingHook is a bundled TraceHook keeping the last n events in memory.
	RingHook = obs.RingHook
	// SlogHook is a bundled TraceHook logging events through log/slog.
	SlogHook = obs.SlogHook
)

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewRingHook creates a trace hook retaining the last n events.
func NewRingHook(n int) *RingHook { return obs.NewRingHook(n) }

// MetricsHandler returns an http.Handler serving r's metrics in Prometheus
// text format at /metrics, plus the pprof endpoints under /debug/pprof/.
func MetricsHandler(r *Metrics) http.Handler { return obs.Handler(r) }

// Tree is an XML document modeled as an element tree.
type Tree = xmlgen.Tree

// Node is one element of a Tree.
type Node = xmlgen.Node

// Open creates an empty labeling store.
func Open(opts Options) (*Store, error) { return core.Open(opts) }

// OpenExisting resumes a store previously checkpointed with Store.Save on
// a persistent backend; structural options come from the saved metadata
// and only runtime options (caching, LRU size) are read from runtime.
func OpenExisting(backend pager.Backend, runtime Options) (*Store, error) {
	return core.OpenExisting(backend, runtime)
}

// GenerateXMark deterministically generates an XMark-shaped document with
// at least n elements.
func GenerateXMark(n int, seed int64) *Tree { return xmlgen.XMark(n, seed) }

// GenerateTwoLevel generates the paper's two-level base document: a root
// with n-1 children.
func GenerateTwoLevel(n int) *Tree { return xmlgen.TwoLevel(n) }

// ParseXML reads an XML document into a Tree.
func ParseXML(r io.Reader) (*Tree, error) { return xmlgen.Parse(r) }

// ContainmentJoin returns every (ancestor, descendant) index pair whose
// spans nest, in O(in + out) using the stack-based merge.
func ContainmentJoin(ancestors, descendants []Span) []Pair {
	return query.ContainmentJoin(ancestors, descendants)
}

// ParseTwig parses a path pattern such as "//open_auction//bidder/increase".
func ParseTwig(s string) Twig { return query.ParseTwig(s) }

// MatchTwig returns the indices of elems matching the twig's final step.
// elems must be sorted by start label.
func MatchTwig(elems []Elem, twig Twig) []int { return query.Match(elems, twig) }

// Pattern is a branching twig (tree pattern) with XPath-style predicates.
type Pattern = query.Pattern

// ParsePattern parses a branching pattern such as
// "//open_auction[//bidder/increase][/seller]//annotation".
func ParsePattern(s string) (*Pattern, error) { return query.ParsePattern(s) }

// MatchPattern returns the indices of elems matching the pattern's root
// with every branch satisfied. elems must be sorted by start label.
func MatchPattern(elems []Elem, pt *Pattern) []int { return query.MatchPattern(elems, pt) }

// CreateFileBackend creates a persistent file-backed block store usable as
// Options.Backend.
func CreateFileBackend(path string, blockSize int) (*pager.FileBackend, error) {
	return pager.CreateFile(path, blockSize)
}

// OpenFileBackend reopens a store file created by CreateFileBackend.
func OpenFileBackend(path string) (*pager.FileBackend, error) {
	return pager.OpenFile(path)
}
