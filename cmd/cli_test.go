// Package cmd_test builds the command-line tools and exercises them end to
// end: generate a document, load it into every scheme, query it, persist
// it, and inspect the saved store.
package cmd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "boxes-cli")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, tool := range []string{"boxgen", "boxload", "boxinspect", "boxbench"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "boxes/cmd/"+tool)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			panic("building " + tool + ": " + err.Error())
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, name string, args ...string) string {
	t.Helper()
	out, err := exec.Command(filepath.Join(binDir, name), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestGenerateLoadInspect(t *testing.T) {
	dir := t.TempDir()
	xml := filepath.Join(dir, "doc.xml")
	gen := run(t, "boxgen", "-elements", "2000", "-seed", "5")
	if err := os.WriteFile(xml, []byte(gen), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, scheme := range []string{"wbox", "wboxo", "bbox", "naive"} {
		out := run(t, "boxload", "-scheme", scheme, "-join", "open_auction,increase", xml)
		if !strings.Contains(out, "all structural invariants hold") {
			t.Fatalf("%s: no invariant confirmation:\n%s", scheme, out)
		}
		if !strings.Contains(out, "join    : open_auction") {
			t.Fatalf("%s: no join output:\n%s", scheme, out)
		}
	}

	// Branching pattern query.
	out := run(t, "boxload", "-scheme", "bbox", "-pattern", "//open_auction[//bidder]", xml)
	if !strings.Contains(out, "pattern : //open_auction[//bidder]") && !strings.Contains(out, "pattern : //open_auction//bidder") {
		t.Fatalf("pattern output missing:\n%s", out)
	}

	// Persist and inspect.
	box := filepath.Join(dir, "labels.box")
	out = run(t, "boxload", "-scheme", "wbox", "-save", box, xml)
	if !strings.Contains(out, "saved") {
		t.Fatalf("save output missing:\n%s", out)
	}
	out = run(t, "boxinspect", "-lid", "1", box)
	if !strings.Contains(out, "scheme  : W-BOX") {
		t.Fatalf("inspect scheme missing:\n%s", out)
	}
	if !strings.Contains(out, "all structural invariants hold") {
		t.Fatalf("inspect check missing:\n%s", out)
	}
	if !strings.Contains(out, "1=") {
		t.Fatalf("lid resolution missing:\n%s", out)
	}
}

func TestBenchCLISmoke(t *testing.T) {
	out := run(t, "boxbench", "-exp", "tquery", "-base", "500", "-inserts", "100")
	if !strings.Contains(out, "Query performance") || !strings.Contains(out, "W-BOX") {
		t.Fatalf("boxbench tquery output:\n%s", out)
	}
	if _, err := exec.Command(filepath.Join(binDir, "boxbench"), "-exp", "nonsense").Output(); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
