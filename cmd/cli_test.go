// Package cmd_test builds the command-line tools and exercises them end to
// end: generate a document, load it into every scheme, query it, persist
// it, and inspect the saved store.
package cmd_test

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "boxes-cli")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, tool := range []string{"boxgen", "boxload", "boxinspect", "boxbench"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "boxes/cmd/"+tool)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			panic("building " + tool + ": " + err.Error())
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, name string, args ...string) string {
	t.Helper()
	out, err := exec.Command(filepath.Join(binDir, name), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestGenerateLoadInspect(t *testing.T) {
	dir := t.TempDir()
	xml := filepath.Join(dir, "doc.xml")
	gen := run(t, "boxgen", "-elements", "2000", "-seed", "5")
	if err := os.WriteFile(xml, []byte(gen), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, scheme := range []string{"wbox", "wboxo", "bbox", "naive"} {
		out := run(t, "boxload", "-scheme", scheme, "-join", "open_auction,increase", xml)
		if !strings.Contains(out, "all structural invariants hold") {
			t.Fatalf("%s: no invariant confirmation:\n%s", scheme, out)
		}
		if !strings.Contains(out, "join    : open_auction") {
			t.Fatalf("%s: no join output:\n%s", scheme, out)
		}
	}

	// Branching pattern query.
	out := run(t, "boxload", "-scheme", "bbox", "-pattern", "//open_auction[//bidder]", xml)
	if !strings.Contains(out, "pattern : //open_auction[//bidder]") && !strings.Contains(out, "pattern : //open_auction//bidder") {
		t.Fatalf("pattern output missing:\n%s", out)
	}

	// Persist and inspect.
	box := filepath.Join(dir, "labels.box")
	out = run(t, "boxload", "-scheme", "wbox", "-save", box, xml)
	if !strings.Contains(out, "saved") {
		t.Fatalf("save output missing:\n%s", out)
	}
	out = run(t, "boxinspect", "-lid", "1", box)
	if !strings.Contains(out, "scheme  : W-BOX") {
		t.Fatalf("inspect scheme missing:\n%s", out)
	}
	if !strings.Contains(out, "all structural invariants hold") {
		t.Fatalf("inspect check missing:\n%s", out)
	}
	if !strings.Contains(out, "1=") {
		t.Fatalf("lid resolution missing:\n%s", out)
	}
}

func TestBenchCLISmoke(t *testing.T) {
	out := run(t, "boxbench", "-exp", "tquery", "-base", "500", "-inserts", "100")
	if !strings.Contains(out, "Query performance") || !strings.Contains(out, "W-BOX") {
		t.Fatalf("boxbench tquery output:\n%s", out)
	}
	if _, err := exec.Command(filepath.Join(binDir, "boxbench"), "-exp", "nonsense").Output(); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestBenchMetricsEndpoint runs boxbench with -metrics :0 -linger, scrapes
// the advertised /metrics endpoint once the experiments finish, and checks
// the Prometheus exposition carries per-op series and structural counters.
func TestBenchMetricsEndpoint(t *testing.T) {
	cmd := exec.Command(filepath.Join(binDir, "boxbench"),
		"-exp", "tquery", "-base", "300", "-inserts", "50",
		"-metrics", "127.0.0.1:0", "-linger")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("boxbench did not exit cleanly on interrupt: %v", err)
			}
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			t.Error("boxbench did not exit after interrupt")
		}
	}()

	// The address line arrives first; "lingering" means the experiments have
	// run and the registry is populated.
	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "metrics : http://") {
			addr = strings.TrimPrefix(strings.Fields(line)[2], "http://")
			addr = strings.TrimSuffix(addr, "/metrics")
		}
		if strings.HasPrefix(line, "lingering") {
			break
		}
	}
	if addr == "" {
		t.Fatalf("no metrics address announced (scanner err: %v)", sc.Err())
	}
	go io.Copy(io.Discard, stdout)

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE boxes_op_duration_seconds histogram",
		`boxes_op_reads_bucket{op="bulk_load",le="+Inf"}`,
		`boxes_op_writes_sum{op="bulk_load"}`,
		"wbox_splits_total",
		"bbox_rebuilds_total",
		"naive_relabels_total",
		"reflog_cache_hits_total",
		"pager_cache_misses_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The query experiment bulk-loads one store per scheme, so the counter
	// must be positive, not just present.
	if ok, _ := regexp.MatchString(`boxes_ops_total\{op="bulk_load"\} [1-9]`, text); !ok {
		t.Errorf("bulk_load op count not positive:\n%s", text)
	}
}
