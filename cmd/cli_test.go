// Package cmd_test builds the command-line tools and exercises them end to
// end: generate a document, load it into every scheme, query it, persist
// it, and inspect the saved store.
package cmd_test

import (
	"bufio"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"boxes/internal/bench"
	"boxes/internal/obs"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "boxes-cli")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, tool := range []string{"boxgen", "boxload", "boxinspect", "boxbench", "benchdiff", "boxfsck", "boxserve", "boxclient"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "boxes/cmd/"+tool)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			panic("building " + tool + ": " + err.Error())
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, name string, args ...string) string {
	t.Helper()
	out, err := exec.Command(filepath.Join(binDir, name), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestGenerateLoadInspect(t *testing.T) {
	dir := t.TempDir()
	xml := filepath.Join(dir, "doc.xml")
	gen := run(t, "boxgen", "-elements", "2000", "-seed", "5")
	if err := os.WriteFile(xml, []byte(gen), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, scheme := range []string{"wbox", "wboxo", "bbox", "naive"} {
		out := run(t, "boxload", "-scheme", scheme, "-join", "open_auction,increase", xml)
		if !strings.Contains(out, "all structural invariants hold") {
			t.Fatalf("%s: no invariant confirmation:\n%s", scheme, out)
		}
		if !strings.Contains(out, "join    : open_auction") {
			t.Fatalf("%s: no join output:\n%s", scheme, out)
		}
	}

	// Branching pattern query.
	out := run(t, "boxload", "-scheme", "bbox", "-pattern", "//open_auction[//bidder]", xml)
	if !strings.Contains(out, "pattern : //open_auction[//bidder]") && !strings.Contains(out, "pattern : //open_auction//bidder") {
		t.Fatalf("pattern output missing:\n%s", out)
	}

	// Persist and inspect.
	box := filepath.Join(dir, "labels.box")
	out = run(t, "boxload", "-scheme", "wbox", "-save", box, xml)
	if !strings.Contains(out, "saved") {
		t.Fatalf("save output missing:\n%s", out)
	}
	out = run(t, "boxinspect", "-lid", "1", box)
	if !strings.Contains(out, "scheme  : W-BOX") {
		t.Fatalf("inspect scheme missing:\n%s", out)
	}
	if !strings.Contains(out, "all structural invariants hold") {
		t.Fatalf("inspect check missing:\n%s", out)
	}
	if !strings.Contains(out, "1=") {
		t.Fatalf("lid resolution missing:\n%s", out)
	}
}

// TestInspectHealth saves a store and checks boxinspect -health prints the
// structural gauges walked from the file.
func TestInspectHealth(t *testing.T) {
	dir := t.TempDir()
	xml := filepath.Join(dir, "doc.xml")
	gen := run(t, "boxgen", "-elements", "1500", "-seed", "7")
	if err := os.WriteFile(xml, []byte(gen), 0o644); err != nil {
		t.Fatal(err)
	}
	box := filepath.Join(dir, "labels.box")
	run(t, "boxload", "-scheme", "bbox", "-save", box, xml)

	out := run(t, "boxinspect", "-health", box)
	for _, want := range []string{
		"health  :",
		`boxes_tree_height{scheme="B-BOX"}`,
		"boxes_node_occupancy",
		"boxes_balance_slack",
		"lidf_fragmentation",
		"pager_blocks",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("boxinspect -health missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `boxes_health_walk_errors{scheme="B-BOX"} = 0`) {
		t.Errorf("walk errors not reported as zero:\n%s", out)
	}
}

// TestInspectCrashDump writes a crash file through a real flight recorder
// and checks boxinspect -crash round-trips it into readable form.
func TestInspectCrashDump(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	fr := obs.NewFlightRecorder(reg, dir, 8)
	reg.AddHook(fr)
	reg.RegisterCollector(obs.CollectorFunc(func() []obs.GaugeValue {
		return []obs.GaugeValue{obs.G("boxes_tree_height", "h", 3, "scheme", "W-BOX")}
	}))
	c := reg.Begin("W-BOX", obs.OpInsert, 0, 0)
	reg.End(c, 4, 2, errors.New("injected failure: write budget exhausted"))
	if fr.Dumps() != 1 {
		t.Fatalf("dumps = %d (err: %v)", fr.Dumps(), fr.Err())
	}

	out := run(t, "boxinspect", "-crash", fr.LastDump())
	for _, want := range []string{
		"trigger : W-BOX",
		"insert",
		"ERROR(permanent): injected failure: write budget exhausted",
		`boxes_tree_height{scheme="W-BOX"} = 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("boxinspect -crash missing %q:\n%s", want, out)
		}
	}

	// A tagged stage-failure dump (crash-matrix and fsck write these) must
	// surface its tags.
	fr.DumpFailure("recovery", errors.New("store did not come back clean"),
		map[string]string{"crash_point": "17", "torn": "true", "scheme": "B-BOX"})
	out = run(t, "boxinspect", "-crash", fr.LastDump())
	for _, want := range []string{
		"trigger : recovery",
		"tags    : crash_point=17 scheme=B-BOX torn=true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("boxinspect -crash (tagged) missing %q:\n%s", want, out)
		}
	}
}

// TestFsckCLI saves a store (with boxload's own post-save fsck), checks it
// with boxfsck and boxinspect -verify, then flips a byte and checks both
// tools catch the corruption with the right exit codes.
func TestFsckCLI(t *testing.T) {
	dir := t.TempDir()
	xml := filepath.Join(dir, "doc.xml")
	gen := run(t, "boxgen", "-elements", "1200", "-seed", "11")
	if err := os.WriteFile(xml, []byte(gen), 0o644); err != nil {
		t.Fatal(err)
	}
	box := filepath.Join(dir, "labels.box")
	out := run(t, "boxload", "-scheme", "wbox", "-save", box, "-fsck", xml)
	if !strings.Contains(out, "fsck    : clean") {
		t.Fatalf("boxload -fsck did not report clean:\n%s", out)
	}

	out = run(t, "boxfsck", "-v", box)
	if !strings.Contains(out, "verdict : clean") {
		t.Fatalf("boxfsck on a clean store:\n%s", out)
	}
	if !strings.Contains(out, "scheme  : W-BOX") {
		t.Fatalf("boxfsck did not restore the structure:\n%s", out)
	}
	out = run(t, "boxinspect", "-verify", box)
	if !strings.Contains(out, "pass checksum verification") {
		t.Fatalf("boxinspect -verify on a clean store:\n%s", out)
	}

	// Flip one bit in block 2 and expect exit 1 plus a block-2 finding.
	f, err := os.OpenFile(box, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	off := int64(2*8192 + 77)
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0x10
	if _, err := f.WriteAt(buf, off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cmd := exec.Command(filepath.Join(binDir, "boxfsck"), box)
	outB, _ := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Errorf("boxfsck on corrupt store: exit %d, want 1:\n%s", code, outB)
	}
	if !strings.Contains(string(outB), "block 2") || !strings.Contains(string(outB), "UNCLEAN") {
		t.Errorf("corruption not described:\n%s", outB)
	}
	cmd = exec.Command(filepath.Join(binDir, "boxinspect"), "-verify", box)
	outB, _ = cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Errorf("boxinspect -verify on corrupt store: exit %d, want 1:\n%s", code, outB)
	}

	// Unexaminable file: exit 2.
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("not a box store"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd = exec.Command(filepath.Join(binDir, "boxfsck"), junk)
	outB, _ = cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 2 {
		t.Errorf("boxfsck on junk: exit %d, want 2:\n%s", code, outB)
	}
}

// TestBenchdiffCLI drives the comparator over synthetic snapshots: clean
// pass, a 2x regression (exit 1), and incomparable parameters (exit 2).
func TestBenchdiffCLI(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, avgIO float64, seed int64) string {
		s := bench.SnapshotFile{
			Version:    1,
			Experiment: "concentrated",
			Params:     bench.SnapshotParams{BlockSize: 512, BaseElems: 100, InsertElems: 50, Seed: seed},
			Schemes: []bench.SchemeSnapshot{{
				Scheme: "W-BOX", Ops: 50, AvgIO: avgIO, TotalIO: uint64(avgIO * 50), MaxIO: 20, P99IO: 10,
			}},
		}
		sub := filepath.Join(dir, name)
		path, err := bench.WriteSnapshotFile(sub, s)
		if err != nil {
			t.Fatal(err)
		}
		return path
	}
	baseline := write("base", 4, 1)
	same := write("same", 4, 1)
	worse := write("worse", 8, 1)
	otherParams := write("params", 4, 99)

	out := run(t, "benchdiff", baseline, same)
	if !strings.Contains(out, "no regressions") {
		t.Errorf("clean diff output:\n%s", out)
	}

	cmd := exec.Command(filepath.Join(binDir, "benchdiff"), baseline, worse)
	outB, err := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Errorf("2x regression: exit %d (err %v), want 1:\n%s", code, err, outB)
	}
	if !strings.Contains(string(outB), "avg_io_per_op") || !strings.Contains(string(outB), "2.00x worse") {
		t.Errorf("regression not described:\n%s", outB)
	}

	cmd = exec.Command(filepath.Join(binDir, "benchdiff"), baseline, otherParams)
	outB, _ = cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 2 {
		t.Errorf("params mismatch: exit %d, want 2:\n%s", code, outB)
	}
}

// TestBenchSnapshotCLI runs boxbench -exp snap on a tiny workload and
// diffs the emitted snapshot against itself.
func TestBenchSnapshotCLI(t *testing.T) {
	dir := t.TempDir()
	out := run(t, "boxbench", "-exp", "snap", "-base", "300", "-inserts", "60",
		"-xmark", "200", "-xprime", "50", "-json", dir)
	if !strings.Contains(out, "BENCH_concentrated.json") {
		t.Errorf("snap output:\n%s", out)
	}
	for _, exp := range []string{"concentrated", "scattered", "xmark"} {
		path := filepath.Join(dir, "BENCH_"+exp+".json")
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("snapshot not written: %v", err)
		}
		run(t, "benchdiff", path, path)
	}
}

func TestBenchCLISmoke(t *testing.T) {
	out := run(t, "boxbench", "-exp", "tquery", "-base", "500", "-inserts", "100")
	if !strings.Contains(out, "Query performance") || !strings.Contains(out, "W-BOX") {
		t.Fatalf("boxbench tquery output:\n%s", out)
	}
	if _, err := exec.Command(filepath.Join(binDir, "boxbench"), "-exp", "nonsense").Output(); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestBenchMetricsEndpoint runs boxbench with -metrics :0 -linger, scrapes
// the advertised /metrics endpoint once the experiments finish, and checks
// the Prometheus exposition carries per-op series and structural counters.
func TestBenchMetricsEndpoint(t *testing.T) {
	cmd := exec.Command(filepath.Join(binDir, "boxbench"),
		"-exp", "tquery", "-base", "300", "-inserts", "50",
		"-metrics", "127.0.0.1:0", "-linger")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("boxbench did not exit cleanly on interrupt: %v", err)
			}
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			t.Error("boxbench did not exit after interrupt")
		}
	}()

	// The address line arrives first; "lingering" means the experiments have
	// run and the registry is populated.
	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "metrics : http://") {
			addr = strings.TrimPrefix(strings.Fields(line)[2], "http://")
			addr = strings.TrimSuffix(addr, "/metrics")
		}
		if strings.HasPrefix(line, "lingering") {
			break
		}
	}
	if addr == "" {
		t.Fatalf("no metrics address announced (scanner err: %v)", sc.Err())
	}
	go io.Copy(io.Discard, stdout)

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE boxes_op_duration_seconds histogram",
		`boxes_op_reads_bucket{op="bulk_load",le="+Inf"}`,
		`boxes_op_writes_sum{op="bulk_load"}`,
		"wbox_splits_total",
		"bbox_rebuilds_total",
		"naive_relabels_total",
		"reflog_cache_hits_total",
		"pager_cache_misses_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The query experiment bulk-loads one store per scheme, so the counter
	// must be positive, not just present.
	if ok, _ := regexp.MatchString(`boxes_ops_total\{op="bulk_load"\} [1-9]`, text); !ok {
		t.Errorf("bulk_load op count not positive:\n%s", text)
	}
}

// TestServeCLI drives the served-store path end to end: boot boxserve on
// an ephemeral port, round-trip single ops and a small load through
// boxclient, drain with SIGTERM, and verify the store offline — the ack
// contract says everything acked before the drain must be on disk.
func TestServeCLI(t *testing.T) {
	dir := t.TempDir()
	box := filepath.Join(dir, "served.box")
	cmd := exec.Command(filepath.Join(binDir, "boxserve"),
		"-store", box, "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
		}
	}()

	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "serving : ") {
			addr = strings.Fields(line)[2]
			break
		}
	}
	if addr == "" {
		t.Fatalf("no serving address announced (scanner err: %v)", sc.Err())
	}
	var serveOut strings.Builder
	drained := make(chan struct{})
	go func() {
		for sc.Scan() {
			serveOut.WriteString(sc.Text() + "\n")
		}
		close(drained)
	}()

	out := run(t, "boxclient", "-addr", addr, "insert-first")
	if !strings.Contains(out, "start LID 1, end LID 2") {
		t.Fatalf("insert-first:\n%s", out)
	}
	out = run(t, "boxclient", "-addr", addr, "insert", "2")
	if !strings.Contains(out, "start LID 3, end LID 4") {
		t.Fatalf("insert:\n%s", out)
	}
	out = run(t, "boxclient", "-addr", addr, "compare", "1", "3")
	if !strings.Contains(out, "compare(1, 3) = -1") {
		t.Fatalf("compare:\n%s", out)
	}
	out = run(t, "boxclient", "-addr", addr, "lookup", "3")
	if !strings.Contains(out, "LID 3 = label") {
		t.Fatalf("lookup:\n%s", out)
	}
	out = run(t, "boxclient", "-addr", addr, "-load",
		"-source", "churn", "-conns", "2", "-ops", "100", "-seed", "7")
	if !strings.Contains(out, "100 attempted, 100 acked, 0 failed") {
		t.Fatalf("load should ack every op on a clean transport:\n%s", out)
	}

	// SIGTERM: the drain must finish in-flight work and close the store.
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	killed = true
	waitDone := make(chan error, 1)
	go func() { waitDone <- cmd.Wait() }()
	select {
	case err := <-waitDone:
		if err != nil {
			t.Fatalf("boxserve did not drain cleanly: %v\n%s", err, serveOut.String())
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("boxserve did not exit after SIGTERM")
	}
	<-drained
	if !strings.Contains(serveOut.String(), "closed  : store synced and released") {
		t.Fatalf("no clean-close line:\n%s", serveOut.String())
	}

	// Acked ⇒ durable: the offline store must hold everything and pass fsck.
	out = run(t, "boxfsck", "-v", box)
	if !strings.Contains(out, "verdict : clean") {
		t.Fatalf("served store not fsck-clean:\n%s", out)
	}
	out = run(t, "boxinspect", "-lid", "1", "-lid", "3", box)
	if !strings.Contains(out, "all structural invariants hold") {
		t.Fatalf("inspect after serve:\n%s", out)
	}
}
