// Command boxserve serves a durable labeling store over the native
// length-prefixed protocol: one process owns the store file and its WAL,
// and any number of boxclient connections get ordered-label operations
// with per-request deadlines, bounded admission, group-committed writes,
// and a graceful drain on SIGTERM (in-flight ops finish and ack; new work
// is rejected with a typed draining status).
//
// Usage:
//
//	boxserve -store doc.box -addr :4280
//	boxserve -store doc.box -addr :4280 -metrics :9100 -group-commit 8
//	boxserve -store doc.box -fault-kth 5 -fault-mode crash   # smoke/chaos
//
// The store file is created on first start and recovered (WAL replay) on
// every restart; a fresh boot epoch tells reconnecting clients that
// in-flight ops from the previous life can no longer be settled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"boxes/internal/core"
	"boxes/internal/faults"
	"boxes/internal/obs"
	"boxes/internal/pager"
	"boxes/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":4280", "listen address for the native protocol")
		storePath = flag.String("store", "", "store file (created if absent, recovered if present)")
		scheme    = flag.String("scheme", "wbox", "labeling scheme for a NEW store: wbox | wboxo | bbox | naive")
		block     = flag.Int("block", 8192, "block size in bytes for a NEW store")
		groupN    = flag.Int("group-commit", 8, "coalesce up to N transactions per WAL fsync")
		queue     = flag.Int("queue", 256, "admission queue depth; beyond it writes are shed with a typed overload status")
		batchMax  = flag.Int("batch-max", 32, "max queued writes group-committed as one WAL transaction")
		metrics   = flag.String("metrics", "", "serve /metrics and /debug/pprof on this address (\":0\" picks a port)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-drain hard deadline on SIGTERM/SIGINT")
		crashDir  = flag.String("crashdir", "", "write flight-recorder crash dumps to this directory on op errors")
		faultKth  = flag.Int("fault-kth", 0, "chaos: fault every k-th connection write (0 = off)")
		faultMode = flag.String("fault-mode", "crash", "chaos: stall | corrupt | crash")
		faultSeed = flag.Int64("fault-seed", 1, "chaos: fault schedule seed")
	)
	flag.Parse()
	if *storePath == "" {
		fmt.Fprintln(os.Stderr, "usage: boxserve -store <file.box> [flags]")
		os.Exit(2)
	}

	store, fb, recovered, err := openStore(*storePath, *scheme, *block, *groupN, *crashDir)
	if err != nil {
		fatal(err)
	}

	met := serve.NewMetrics()
	reg := store.MetricsRegistry()
	reg.RegisterCollector(met)
	store.RegisterHealthGauges()
	if *metrics != "" {
		ln, err := obs.Serve(*metrics, reg)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		fmt.Printf("metrics : http://%s/metrics (pprof under /debug/pprof/)\n", ln.Addr())
	}

	cfg := serve.Config{
		Store:      store,
		QueueDepth: *queue,
		BatchMax:   *batchMax,
		Metrics:    met,
		Logf:       func(format string, args ...any) { fmt.Fprintf(os.Stderr, "boxserve: "+format+"\n", args...) },
	}
	if *faultKth > 0 {
		sched := faults.NewSchedule(*faultSeed)
		var mode faults.Mode
		switch *faultMode {
		case "stall":
			mode = faults.ModeTransient
		case "corrupt":
			mode = faults.ModePermanent
		case "crash":
			mode = faults.ModeCrash
		default:
			fatal(fmt.Errorf("unknown -fault-mode %q (want stall | corrupt | crash)", *faultMode))
		}
		sched.FailEveryKth(*faultKth, mode, faults.OpWrite)
		cfg.WrapConn = func(conn net.Conn) net.Conn { return serve.NewFaultConn(conn, sched) }
		fmt.Printf("chaos   : %s every %d-th connection write (seed %d)\n", *faultMode, *faultKth, *faultSeed)
	}
	srv, err := serve.NewServer(cfg)
	if err != nil {
		fatal(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving : %s  store=%s  scheme=%s  labels=%d\n",
		l.Addr(), *storePath, store.Scheme(), store.Count())
	if recovered {
		ws := fb.WALStats()
		fmt.Printf("wal     : recovered store; log at %d bytes\n", ws.SizeBytes)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("drain   : caught %v; finishing in-flight ops (hard deadline %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "boxserve: drain hit the hard deadline: %v\n", err)
		}
		if serr := <-done; serr != nil {
			fmt.Fprintf(os.Stderr, "boxserve: serve: %v\n", serr)
		}
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	}

	if err := store.Close(); err != nil {
		fatal(fmt.Errorf("close: %w", err))
	}
	fmt.Println("closed  : store synced and released")
}

// openStore creates the store file on first start or recovers it (WAL
// replay plus saved metadata) on restart. Either way the result is a
// durable, group-committing SyncStore.
func openStore(path, scheme string, block, groupN int, crashDir string) (*core.SyncStore, *pager.FileBackend, bool, error) {
	runtime := core.Options{Durable: true, CrashDir: crashDir}
	if groupN > 0 {
		runtime.Durability = &pager.Durability{Every: groupN}
	}
	if _, err := os.Stat(path); err == nil {
		fb, err := pager.OpenFile(path)
		if err != nil {
			return nil, nil, false, fmt.Errorf("open %s: %w", path, err)
		}
		st, err := core.OpenExisting(fb, runtime)
		if err != nil {
			fb.Close()
			if errors.Is(err, core.ErrNoSavedStore) {
				return nil, nil, false, fmt.Errorf("%s exists but holds no saved store (partial create?); remove it to start fresh", path)
			}
			return nil, nil, false, fmt.Errorf("recover %s: %w", path, err)
		}
		return core.NewSyncStore(st), fb, true, nil
	}
	opts := runtime
	opts.BlockSize = block
	switch scheme {
	case "wbox":
		opts.Scheme = core.SchemeWBox
	case "wboxo":
		opts.Scheme = core.SchemeWBoxO
		opts.Ordinal = true
	case "bbox":
		opts.Scheme = core.SchemeBBox
	case "naive":
		opts.Scheme = core.SchemeNaive
	default:
		return nil, nil, false, fmt.Errorf("unknown scheme %q", scheme)
	}
	fb, err := pager.CreateFile(path, block)
	if err != nil {
		return nil, nil, false, fmt.Errorf("create %s: %w", path, err)
	}
	opts.Backend = fb
	st, err := core.Open(opts)
	if err != nil {
		fb.Close()
		return nil, nil, false, err
	}
	// Persist the metadata head immediately so a restart before the first
	// write still finds a saved store rather than a half-created file.
	if err := st.Save(); err != nil {
		st.Close()
		return nil, nil, false, fmt.Errorf("initial save: %w", err)
	}
	return core.NewSyncStore(st), fb, false, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "boxserve: %v\n", err)
	os.Exit(1)
}
