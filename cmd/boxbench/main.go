// Command boxbench regenerates the tables and figures of the paper's
// evaluation (Section 7). Each experiment reports block-I/O costs measured
// with caching off, exactly like the paper.
//
// Usage:
//
//	boxbench -exp fig5            # one experiment
//	boxbench -exp all -scale 10   # everything, at 10x the default size
//
// Experiments: fig5 fig6 fig7 fig8 fig9 tquery tbulk tbits tcache all,
// plus snap, which writes machine-readable BENCH_<experiment>.json
// snapshots (see -json) for benchdiff to compare against a baseline.
// The paper's own sizes correspond to -scale 100.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"boxes/internal/bench"
	"boxes/internal/obs"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id: fig5 fig6 fig7 fig8 fig9 tquery tbulk tbits tcache tfan tblock tdurable tgroup adv snap all")
		jsonDir   = flag.String("json", ".", "directory BENCH_*.json snapshots are written to by -exp snap")
		scale     = flag.Int("scale", 1, "workload scale factor (100 = the paper's sizes)")
		blockSize = flag.Int("block", 8192, "block size in bytes")
		seed      = flag.Int64("seed", 1, "XMark generator seed")
		base      = flag.Int("base", 0, "override: base document elements")
		inserts   = flag.Int("inserts", 0, "override: inserted elements")
		xmark     = flag.Int("xmark", 0, "override: XMark document elements")
		xprime    = flag.Int("xprime", 0, "override: XMark priming prefix excluded from measurement")
		metrics   = flag.String("metrics", "", "serve /metrics and /debug/pprof on this address (\":0\" picks a port)")
		trace     = flag.String("trace", "", "record spans and write a Chrome trace-event JSON file (open in Perfetto)")
		linger    = flag.Bool("linger", false, "with -metrics: keep serving after the experiments until interrupted")
	)
	flag.Parse()

	cfg := bench.Default().Scale(*scale)
	cfg.BlockSize = *blockSize
	cfg.Seed = *seed
	if *base > 0 {
		cfg.BaseElems = *base
	}
	if *inserts > 0 {
		cfg.InsertElems = *inserts
	}
	if *xmark > 0 {
		// A shrunk document also drops the default priming prefix, which
		// could otherwise exceed the whole workload; set -xprime to restore.
		cfg.XMarkElems = *xmark
		cfg.XMarkPrime = 0
	}
	if *xprime > 0 {
		cfg.XMarkPrime = *xprime
	}

	if *metrics != "" || *trace != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	if *metrics != "" {
		ln, err := obs.Serve(*metrics, cfg.Metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "boxbench: metrics: %v\n", err)
			os.Exit(1)
		}
		defer ln.Close()
		fmt.Printf("metrics : http://%s/metrics (pprof under /debug/pprof/)\n", ln.Addr())
	}
	if *trace != "" {
		cfg.Metrics.Tracer().Start(obs.TraceOptions{})
		defer func() {
			f, err := os.Create(*trace)
			if err == nil {
				err = obs.WriteChromeTrace(f, cfg.Metrics.Tracer())
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "boxbench: trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("trace   : wrote %s (load in Perfetto / chrome://tracing)\n", *trace)
		}()
	}

	type experiment struct {
		id  string
		run func(io.Writer, bench.Config) error
	}
	all := []experiment{
		{"fig5", bench.Fig5},
		{"fig6", bench.Fig6},
		{"fig7", bench.Fig7},
		{"fig8", bench.Fig8},
		{"fig9", bench.Fig9},
		{"tquery", bench.QueryCost},
		{"tbulk", bench.BulkVsElement},
		{"tbits", bench.LabelBits},
		{"tcache", bench.CachingLogging},
		{"tfan", bench.RelaxedFanout},
		{"tblock", bench.BlockSizeSweep},
		{"tdurable", bench.Durable},
		{"tgroup", bench.Group},
		{"adv", bench.Adv},
		{"snap", func(w io.Writer, cfg bench.Config) error {
			paths, err := bench.WriteBenchSnapshots(*jsonDir, cfg)
			for _, p := range paths {
				fmt.Fprintf(w, "wrote   : %s\n", p)
			}
			return err
		}},
	}
	// Experiments open and close their stores internally, so each one is a
	// clean shutdown boundary: a SIGINT/SIGTERM finishes the experiment in
	// flight (its store closes normally, group commits drain) and skips the
	// rest instead of killing the process mid-transaction.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	interrupted := func() bool {
		select {
		case sig := <-sigs:
			fmt.Printf("shutdown: caught %v, stopping after the completed experiment\n", sig)
			return true
		default:
			return false
		}
	}

	ran := false
	for _, e := range all {
		if *exp != "all" && *exp != e.id {
			continue
		}
		if e.id == "snap" && *exp != "snap" {
			// Snapshots rerun the update workloads; only on explicit request.
			continue
		}
		if interrupted() {
			os.Exit(0)
		}
		ran = true
		start := time.Now()
		if err := e.run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "boxbench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "boxbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *metrics != "" && *linger {
		fmt.Println("lingering: metrics endpoint stays up until interrupted")
		sig := <-sigs
		fmt.Printf("shutdown: caught %v\n", sig)
	}
}
