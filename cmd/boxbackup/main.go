// Command boxbackup manages snapshots of stored box files.
//
//	boxbackup backup  <store.box> <backup.box>   take a snapshot
//	boxbackup restore <backup.box> <store.box>   restore from a snapshot
//	boxbackup verify  <store.box>                offline consistency check
//
// backup opens the source (running WAL recovery exactly like any open),
// copies every committed block image with its checksum verified, and
// writes a self-contained store — fresh header, fresh checksum sidecar,
// empty WAL — so a restore is a plain file copy with nothing to replay.
// Live processes snapshot through the library API (Store.Backup or
// SyncStore.Backup, which keeps lookups running during the copy); this
// command works on files no process has open.
//
// restore copies the snapshot (and its .crc/.wal sidecars) over the target
// path and verifies the result with the offline checker. verify runs the
// checker alone.
//
// Exit codes: 0 success, 1 the store/backup failed verification, 2 the
// operation could not be performed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"boxes/internal/fsck"
	"boxes/internal/pager"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "backup":
		if len(args) != 3 {
			usage()
			os.Exit(2)
		}
		backup(args[1], args[2])
	case "restore":
		if len(args) != 3 {
			usage()
			os.Exit(2)
		}
		restore(args[1], args[2])
	case "verify":
		if len(args) != 2 {
			usage()
			os.Exit(2)
		}
		verify(args[1])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  boxbackup backup  <store.box> <backup.box>
  boxbackup restore <backup.box> <store.box>
  boxbackup verify  <store.box>`)
}

func backup(src, dst string) {
	fb, err := pager.OpenFile(src)
	if err != nil {
		fatal(err)
	}
	defer fb.Close()
	if rec := fb.RecoveryInfo(); rec.Replayed || rec.DiscardedBytes > 0 {
		fmt.Printf("recovery: replayed=%v frames=%d discarded=%dB\n",
			rec.Replayed, rec.ReplayedFrames, rec.DiscardedBytes)
	}
	if err := fb.BackupTo(dst); err != nil {
		fatal(err)
	}
	fmt.Printf("backup  : %s -> %s (%d blocks, bound %d)\n", src, dst, fb.NumBlocks(), fb.Bound())
}

func restore(src, dst string) {
	// A backup carries no WAL state, so restore is a verbatim copy of the
	// three files; the subsequent check proves the result opens clean.
	for _, ext := range []string{"", ".crc", ".wal"} {
		if err := copyFile(src+ext, dst+ext); err != nil {
			if ext != "" && os.IsNotExist(err) {
				// Sidecar disabled on the source store: remove any stale one.
				os.Remove(dst + ext)
				continue
			}
			fatal(err)
		}
	}
	fmt.Printf("restore : %s -> %s\n", src, dst)
	verify(dst)
}

func verify(path string) {
	rep, err := fsck.Check(path, fsck.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("blocks  : %d allocated, %d free, bound %d, %d bytes each\n",
		rep.Allocated, rep.FreeCount, rep.Bound, rep.BlockSize)
	if rep.Scheme != "" {
		fmt.Printf("scheme  : %s (%d labels)\n", rep.Scheme, rep.Labels)
	}
	for _, p := range rep.Problems {
		fmt.Printf("problem : %s\n", p)
	}
	if !rep.Clean() {
		fmt.Println("verdict : UNCLEAN")
		os.Exit(1)
	}
	fmt.Println("verdict : clean")
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "boxbackup: %v\n", err)
	os.Exit(2)
}
