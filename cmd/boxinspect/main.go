// Command boxinspect opens a labeling store file saved by boxload -save
// (or Store.Save), reports its state, verifies every structural invariant,
// and optionally resolves LIDs, prints structural health gauges, or
// pretty-prints a flight-recorder crash dump.
//
// Usage:
//
//	boxinspect labels.box
//	boxinspect -lid 42 -lid 43 labels.box
//	boxinspect -health labels.box
//	boxinspect -crash crash-W-BOX-insert-....json
//	boxinspect -health -metrics-url http://host:9100   # running boxserve
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"boxes/internal/core"
	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/pager"
)

type lidList []order.LID

func (l *lidList) String() string { return fmt.Sprint(*l) }
func (l *lidList) Set(s string) error {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return err
	}
	*l = append(*l, order.LID(v))
	return nil
}

func main() {
	var lids lidList
	check := flag.Bool("check", true, "verify structural invariants")
	verify := flag.Bool("verify", false, "verify every block checksum and report WAL recovery state")
	metrics := flag.Bool("metrics", true, "print the store's metrics snapshot (per-phase I/O, check duration, structural counters)")
	health := flag.Bool("health", false, "walk the structure and print its health gauges (height, occupancy, balance slack, fragmentation)")
	crash := flag.String("crash", "", "pretty-print a flight-recorder crash dump instead of opening a store")
	ledger := flag.Bool("ledger", false, "print the amortized-cost ledger accumulated by the ops this inspection ran")
	url := flag.String("metrics-url", "", "scrape health gauges from a running server's /metrics endpoint instead of opening a store file")
	flag.Var(&lids, "lid", "resolve this LID to its current label (repeatable)")
	flag.Parse()

	if *crash != "" {
		if err := printCrashDump(*crash); err != nil {
			fatal(err)
		}
		return
	}
	if *url != "" {
		// A running server holds the store file exclusively; its health is
		// read over the wire, not from disk.
		if err := printRemoteHealth(os.Stdout, *url); err != nil {
			fatal(err)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: boxinspect [flags] <store.box>  |  boxinspect -crash <dump.json>")
		os.Exit(2)
	}

	fb, err := pager.OpenFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer fb.Close()
	st, err := core.OpenExisting(fb, core.Options{})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("store   : %s\n", flag.Arg(0))
	fmt.Printf("scheme  : %s\n", st.Scheme())
	fmt.Printf("labels  : %d (%d elements)\n", st.Count(), st.Count()/2)
	fmt.Printf("height  : %d\n", st.Height())
	fmt.Printf("bits    : %d per label\n", st.LabelBits())
	fmt.Printf("blocks  : %d x %d bytes\n", st.Blocks(), fb.BlockSize())

	if *verify {
		if rec := fb.RecoveryInfo(); rec.Replayed || rec.DiscardedBytes > 0 || rec.SidecarRebuilt {
			fmt.Printf("recovery: replayed=%v frames=%d discarded=%dB sidecar_rebuilt=%v\n",
				rec.Replayed, rec.ReplayedFrames, rec.DiscardedBytes, rec.SidecarRebuilt)
		}
		bad := 0
		for id := pager.BlockID(1); id < fb.Bound(); id++ {
			if err := fb.VerifyBlock(id); err != nil {
				fmt.Printf("verify  : block %d: %v\n", id, err)
				bad++
			}
		}
		if bad > 0 {
			fatal(fmt.Errorf("%d of %d blocks failed checksum verification", bad, fb.Bound()-1))
		}
		fmt.Printf("verify  : all %d blocks pass checksum verification\n", fb.Bound()-1)
	}

	if *check {
		if err := st.CheckInvariants(); err != nil {
			fatal(fmt.Errorf("INVARIANT VIOLATION: %w", err))
		}
		fmt.Println("check   : all structural invariants hold")
	}

	if *health {
		fmt.Println("health  :")
		printGauges(os.Stdout, st.Health(), "  ")
	}

	if len(lids) > 0 {
		var parts []string
		for _, lid := range lids {
			v, err := st.Lookup(lid)
			if err != nil {
				parts = append(parts, fmt.Sprintf("%d=<%v>", lid, err))
				continue
			}
			parts = append(parts, fmt.Sprintf("%d=%d", lid, v))
		}
		fmt.Printf("labels  : %s\n", strings.Join(parts, " "))
	}

	if *metrics {
		snap := st.Metrics()
		fmt.Println("metrics :")
		for _, name := range []string{"check", "lookup"} {
			op, ok := snap.Ops[name]
			if !ok || op.Count == 0 {
				continue
			}
			fmt.Printf("  %-7s: %d ops, %d reads, %d writes, %v total\n",
				name, op.Count, op.Reads.Sum, op.Writes.Sum, op.LatencyTotal().Round(time.Microsecond))
		}
		if ctrs := snap.FormatCounters(); ctrs != "" {
			fmt.Printf("  events : %s\n", ctrs)
		}
	}

	if *ledger {
		// The ledger attributes every block I/O and structural event of the
		// ops boxinspect itself just ran (open, check, lookups) to the
		// (scheme, op) that caused it — a cheap way to see the read cost of
		// a verification pass, and to confirm conservation on a real store.
		fmt.Println("ledger  :")
		for _, line := range strings.Split(strings.TrimRight(obs.FormatLedger(st.MetricsRegistry()), "\n"), "\n") {
			fmt.Printf("  %s\n", line)
		}
	}
}

// healthFamilies are the /metrics name prefixes printed by the remote
// health view: the same structural/durability gauges -health walks from a
// file, plus the serve-layer counters a file cannot carry.
var healthFamilies = []string{
	"boxes_tree_height", "boxes_node_occupancy", "boxes_balance_slack",
	"boxes_health_walk_errors", "boxes_amortized_",
	"lidf_", "pager_", "wbox_", "bbox_", "naive_", "serve_",
}

// printRemoteHealth scrapes a running server's /metrics endpoint and
// prints the health gauge families in the same form as -health.
func printRemoteHealth(w *os.File, url string) error {
	if !strings.Contains(url, "://") {
		if strings.HasPrefix(url, ":") {
			url = "localhost" + url
		}
		url = "http://" + url
	}
	url = strings.TrimRight(url, "/") + "/metrics"
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	fmt.Fprintf(w, "remote  : %s\n", url)
	fmt.Fprintln(w, "health  :")
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	matched := 0
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		for _, p := range healthFamilies {
			if strings.HasPrefix(line, p) {
				// Prometheus exposition is "name{labels} value"; render it
				// in -health's "name{labels} = value" form.
				if i := strings.LastIndexByte(line, ' '); i > 0 {
					fmt.Fprintf(w, "  %s = %s\n", line[:i], line[i+1:])
					matched++
				}
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if matched == 0 {
		return fmt.Errorf("%s: no health gauges in the exposition (is this a boxes /metrics endpoint?)", url)
	}
	return nil
}

// printGauges renders gauges sorted by family and labels, one per line.
func printGauges(w *os.File, gs []obs.GaugeValue, indent string) {
	obs.SortGauges(gs)
	for _, g := range gs {
		fmt.Fprintf(w, "%s%s%s = %s\n", indent, g.Name, g.LabelString(),
			strconv.FormatFloat(g.Value, 'g', -1, 64))
	}
}

// printCrashDump pretty-prints a flight-recorder crash file: the trigger,
// the op events leading up to it, the structural gauges at dump time, and
// the non-zero structural counters.
func printCrashDump(path string) error {
	d, err := obs.ReadCrashDump(path)
	if err != nil {
		return err
	}
	fmt.Printf("crash   : %s\n", path)
	fmt.Printf("time    : %s\n", d.Time.Format(time.RFC3339Nano))
	fmt.Printf("trigger : %s\n", formatEvent(d.Trigger))
	if len(d.Tags) > 0 {
		keys := make([]string, 0, len(d.Tags))
		for k := range d.Tags {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var parts []string
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%s", k, d.Tags[k]))
		}
		fmt.Printf("tags    : %s\n", strings.Join(parts, " "))
	}
	fmt.Printf("events  : last %d before the failure (oldest first)\n", len(d.Events))
	for _, e := range d.Events {
		fmt.Printf("  %s\n", formatEvent(e))
	}
	if len(d.Gauges) > 0 {
		fmt.Println("gauges  :")
		printGauges(os.Stdout, d.Gauges, "  ")
	}
	if ctrs := d.Metrics.FormatCounters(); ctrs != "" {
		fmt.Printf("events  : %s\n", ctrs)
	}
	var ops []string
	for name, op := range d.Metrics.Ops {
		if op.Count > 0 {
			ops = append(ops, fmt.Sprintf("%s=%d(err:%d)", name, op.Count, op.Errors))
		}
	}
	if len(ops) > 0 {
		sort.Strings(ops)
		fmt.Printf("ops     : %s\n", strings.Join(ops, " "))
	}
	if len(d.SlowOps) > 0 {
		fmt.Printf("slow ops: %d captured (oldest first)\n", len(d.SlowOps))
		for _, s := range d.SlowOps {
			fmt.Printf("  %-14s %-8s %10v  %d spans%s\n", s.Root.Name, s.Root.Scheme,
				time.Duration(s.Root.Dur).Round(time.Microsecond), len(s.Tree), errSuffix(s.Root.Err))
			for _, sp := range s.Tree {
				fmt.Printf("    %-26s %10v%s\n", sp.Name,
					time.Duration(sp.Dur).Round(time.Microsecond), errSuffix(sp.Err))
			}
		}
	}
	return nil
}

func errSuffix(e string) string {
	if e == "" {
		return ""
	}
	return "  ERROR: " + e
}

func formatEvent(e obs.EventRecord) string {
	if e.Start {
		return fmt.Sprintf("%-8s %-14s (op start)", e.Scheme, e.Op)
	}
	s := fmt.Sprintf("%-8s %-14s %8v  r=%d w=%d", e.Scheme, e.Op,
		time.Duration(e.Duration).Round(time.Microsecond), e.Reads, e.Writes)
	if e.Error != "" {
		s += "  ERROR"
		if e.ErrorClass != "" {
			s += "(" + e.ErrorClass + ")"
		}
		s += ": " + e.Error
	}
	return s
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "boxinspect: %v\n", err)
	os.Exit(1)
}
