// Command boxinspect opens a labeling store file saved by boxload -save
// (or Store.Save), reports its state, verifies every structural invariant,
// and optionally resolves LIDs.
//
// Usage:
//
//	boxinspect labels.box
//	boxinspect -lid 42 -lid 43 labels.box
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"boxes/internal/core"
	"boxes/internal/order"
	"boxes/internal/pager"
)

type lidList []order.LID

func (l *lidList) String() string { return fmt.Sprint(*l) }
func (l *lidList) Set(s string) error {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return err
	}
	*l = append(*l, order.LID(v))
	return nil
}

func main() {
	var lids lidList
	check := flag.Bool("check", true, "verify structural invariants")
	metrics := flag.Bool("metrics", true, "print the store's metrics snapshot (per-phase I/O, check duration, structural counters)")
	flag.Var(&lids, "lid", "resolve this LID to its current label (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: boxinspect [flags] <store.box>")
		os.Exit(2)
	}

	fb, err := pager.OpenFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer fb.Close()
	st, err := core.OpenExisting(fb, core.Options{})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("store   : %s\n", flag.Arg(0))
	fmt.Printf("scheme  : %s\n", st.Scheme())
	fmt.Printf("labels  : %d (%d elements)\n", st.Count(), st.Count()/2)
	fmt.Printf("height  : %d\n", st.Height())
	fmt.Printf("bits    : %d per label\n", st.LabelBits())
	fmt.Printf("blocks  : %d x %d bytes\n", st.Blocks(), fb.BlockSize())

	if *check {
		if err := st.CheckInvariants(); err != nil {
			fatal(fmt.Errorf("INVARIANT VIOLATION: %w", err))
		}
		fmt.Println("check   : all structural invariants hold")
	}

	if len(lids) > 0 {
		var parts []string
		for _, lid := range lids {
			v, err := st.Lookup(lid)
			if err != nil {
				parts = append(parts, fmt.Sprintf("%d=<%v>", lid, err))
				continue
			}
			parts = append(parts, fmt.Sprintf("%d=%d", lid, v))
		}
		fmt.Printf("labels  : %s\n", strings.Join(parts, " "))
	}

	if *metrics {
		snap := st.Metrics()
		fmt.Println("metrics :")
		for _, name := range []string{"check", "lookup"} {
			op, ok := snap.Ops[name]
			if !ok || op.Count == 0 {
				continue
			}
			fmt.Printf("  %-7s: %d ops, %d reads, %d writes, %v total\n",
				name, op.Count, op.Reads.Sum, op.Writes.Sum, op.LatencyTotal().Round(time.Microsecond))
		}
		if ctrs := snap.FormatCounters(); ctrs != "" {
			fmt.Printf("  events : %s\n", ctrs)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "boxinspect: %v\n", err)
	os.Exit(1)
}
