// Command boxclient talks to a boxserve instance: single ordered-label
// operations for scripting, or a closed-loop load generator (-load) that
// drives the positional workload sources over N connections and reports
// client-observed latency quantiles and throughput.
//
// Usage:
//
//	boxclient -addr :4280 insert-first
//	boxclient -addr :4280 insert 2            # before the tag with LID 2
//	boxclient -addr :4280 lookup 1
//	boxclient -addr :4280 compare 1 3
//	boxclient -addr :4280 delete 3 4          # start and end LID
//	boxclient -addr :4280 -load -source zipf -conns 8 -ops 20000 -json results/
//
// Every operation carries a session-scoped sequence number, so retries
// after lost acks are exactly-once within a server lifetime; -json writes
// a BENCH_serve.json snapshot that benchdiff can gate in CI.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"boxes/internal/bench"
	"boxes/internal/order"
	"boxes/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:4280", "boxserve address")
		timeout = flag.Duration("timeout", 5*time.Second, "per-op deadline (rides the wire; the server cancels queued ops past it)")
		load    = flag.Bool("load", false, "run the closed-loop load generator instead of a single op")
		source  = flag.String("source", "zipf", "load workload: zipf | churn | uniform | bisect | frontpack")
		conns   = flag.Int("conns", 4, "load: concurrent connections")
		ops     = flag.Int("ops", 1000, "load: total operation budget across all connections")
		seed    = flag.Int64("seed", 1, "load: workload seed")
		skew    = flag.Float64("skew", 1.1, "load: zipf skew")
		churn   = flag.Int("churn-target", 64, "load: churn steady-state size per connection")
		jsonDir = flag.String("json", "", "load: write a BENCH_serve.json snapshot into this directory")
	)
	flag.Parse()

	if *load {
		runLoad(*addr, *timeout, *source, *conns, *ops, *seed, *skew, *churn, *jsonDir)
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: boxclient [flags] <insert-first | insert LID | delete START END | delete-subtree START END | lookup LID | compare A B>")
		fmt.Fprintln(os.Stderr, "       boxclient [flags] -load")
		os.Exit(2)
	}

	c, err := serve.Dial(*addr, serve.ClientOptions{Timeout: *timeout})
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	switch cmd := flag.Arg(0); cmd {
	case "insert-first":
		e, err := c.InsertFirst(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("inserted root element: start LID %d, end LID %d\n", e.Start, e.End)
	case "insert":
		lid := lidArg(1)
		e, err := c.Insert(ctx, lid)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("inserted before LID %d: start LID %d, end LID %d\n", lid, e.Start, e.End)
	case "delete":
		e := order.ElemLIDs{Start: lidArg(1), End: lidArg(2)}
		if err := c.DeleteElement(ctx, e); err != nil {
			fatal(err)
		}
		fmt.Printf("deleted element (LIDs %d, %d)\n", e.Start, e.End)
	case "delete-subtree":
		e := order.ElemLIDs{Start: lidArg(1), End: lidArg(2)}
		if err := c.DeleteSubtree(ctx, e); err != nil {
			fatal(err)
		}
		fmt.Printf("deleted subtree rooted at (LIDs %d, %d)\n", e.Start, e.End)
	case "lookup":
		lid := lidArg(1)
		label, err := c.Lookup(ctx, lid)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("LID %d = label %d\n", lid, label)
	case "compare":
		a, b := lidArg(1), lidArg(2)
		cmp, err := c.Compare(ctx, a, b)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("compare(%d, %d) = %d\n", a, b, cmp)
	default:
		fatal(fmt.Errorf("unknown command %q", cmd))
	}
}

func runLoad(addr string, timeout time.Duration, source string, conns, ops int, seed int64, skew float64, churn int, jsonDir string) {
	rep, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		Addr:        addr,
		Conns:       conns,
		Ops:         ops,
		Source:      source,
		Seed:        seed,
		Skew:        skew,
		ChurnTarget: churn,
		Timeout:     timeout,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("load    : %s over %d conns\n", rep.Source, rep.Conns)
	fmt.Printf("ops     : %d attempted, %d acked, %d failed, %d skipped in %v\n",
		rep.Attempted, rep.Acked, rep.Failed, rep.Skipped, rep.Duration.Round(time.Millisecond))
	fmt.Printf("latency : p50 %v  p99 %v\n", rep.P50.Round(time.Microsecond), rep.P99.Round(time.Microsecond))
	fmt.Printf("thruput : %.0f acked ops/sec\n", rep.OpsPerSec)

	if jsonDir != "" {
		snap := bench.SnapshotFile{
			Version:    1,
			Experiment: "serve",
			Params:     bench.SnapshotParams{InsertElems: ops, Seed: seed},
			Schemes: []bench.SchemeSnapshot{{
				Scheme:       rep.Source,
				Ops:          int(rep.Attempted),
				OpsPerSec:    rep.OpsPerSec,
				LatencyP50Ns: rep.P50.Nanoseconds(),
				LatencyP99Ns: rep.P99.Nanoseconds(),
				Gauges: map[string]float64{
					"serve_acked":       float64(rep.Acked),
					"serve_failed":      float64(rep.Failed),
					"serve_skipped":     float64(rep.Skipped),
					"serve_ops_per_sec": rep.OpsPerSec,
				},
			}},
		}
		path, err := bench.WriteSnapshotFile(jsonDir, snap)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("snapshot: wrote %s\n", path)
	}
}

func lidArg(i int) order.LID {
	if i >= flag.NArg() {
		fatal(fmt.Errorf("missing LID argument %d", i))
	}
	n, err := strconv.ParseUint(flag.Arg(i), 10, 64)
	if err != nil {
		fatal(fmt.Errorf("bad LID %q: %w", flag.Arg(i), err))
	}
	return order.LID(n)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "boxclient: %v\n", err)
	os.Exit(1)
}
