// Command boxtop is a live latency console for a running boxes process
// (boxbench -metrics, boxload -metrics -linger, or any embedder serving
// obs.Handler). It polls /debug/spans — per-op and per-phase latency
// summaries plus captured slow operations — and a few durability gauges
// from /metrics, and redraws a compact dashboard each interval.
//
// Usage:
//
//	boxtop :9100
//	boxtop -interval 2s -phases 12 localhost:9100
//	boxtop -once :9100          # one snapshot, no screen clearing (scriptable)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"boxes/internal/obs"
)

func main() {
	var (
		interval = flag.Duration("interval", 1*time.Second, "poll interval")
		n        = flag.Int("n", 0, "number of polls before exiting (0 = forever)")
		once     = flag.Bool("once", false, "print one snapshot without clearing the screen and exit")
		phases   = flag.Int("phases", 16, "phase rows shown (hottest first)")
		slow     = flag.Int("slow", 5, "slow operations shown (newest first)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: boxtop [flags] <host:port>")
		os.Exit(2)
	}
	base := flag.Arg(0)
	if !strings.Contains(base, "://") {
		if strings.HasPrefix(base, ":") {
			base = "localhost" + base
		}
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	client := &http.Client{Timeout: 5 * time.Second}
	opts := renderOptions{Phases: *phases, Slow: *slow}
	for i := 0; *n == 0 || i < *n; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		d, gauges, err := poll(client, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "boxtop: %v\n", err)
			os.Exit(1)
		}
		w := bufio.NewWriter(os.Stdout)
		if !*once {
			fmt.Fprint(w, "\x1b[H\x1b[2J") // home + clear
		}
		render(w, base, d, gauges, opts)
		w.Flush()
		if *once {
			return
		}
	}
}

// poll fetches /debug/spans and the durability gauge lines of /metrics.
func poll(client *http.Client, base string) (obs.SpansDebug, []string, error) {
	var d obs.SpansDebug
	resp, err := client.Get(base + "/debug/spans")
	if err != nil {
		return d, nil, err
	}
	err = json.NewDecoder(resp.Body).Decode(&d)
	resp.Body.Close()
	if err != nil {
		return d, nil, fmt.Errorf("decoding /debug/spans: %w", err)
	}
	gauges, err := pollGauges(client, base)
	if err != nil {
		return d, nil, err
	}
	return d, gauges, nil
}

// gaugePrefixes selects the /metrics families worth a dashboard line: the
// WAL/group-commit behavior the trace view exists to explain.
var gaugePrefixes = []string{
	"pager_wal_syncs_per_commit",
	"pager_wal_group_size",
	"pager_gc_queue_depth",
	"pager_gc_overlay_blocks",
}

func pollGauges(client *http.Client, base string) ([]string, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		for _, p := range gaugePrefixes {
			if strings.HasPrefix(line, p) {
				out = append(out, line)
				break
			}
		}
	}
	return out, sc.Err()
}

type renderOptions struct {
	Phases int // max phase rows
	Slow   int // max slow ops
}

// render draws one dashboard frame. Split out from main so tests can drive
// it with a canned SpansDebug.
func render(w io.Writer, target string, d obs.SpansDebug, gauges []string, o renderOptions) {
	state := "histograms only"
	if d.TracingEnabled {
		state = "tracing on"
	}
	fmt.Fprintf(w, "boxtop  %s  (%s)  %s\n\n", target, state, time.Now().Format("15:04:05"))

	fmt.Fprintf(w, "%-16s %10s %8s %10s %10s %10s\n", "op", "count", "errors", "p50", "p99", "total")
	for _, op := range d.Ops {
		fmt.Fprintf(w, "%-16s %10d %8d %10s %10s %10s\n",
			op.Op, op.Count, op.Errors, ns(op.P50Ns), ns(op.P99Ns), ns(op.TotalNs))
	}

	fmt.Fprintf(w, "\n%-28s %10s %10s %10s %10s %6s\n", "phase", "count", "p50", "p99", "total", "share")
	var grand uint64
	for _, ph := range d.Phases {
		grand += ph.TotalNs
	}
	rows := d.Phases
	if o.Phases > 0 && len(rows) > o.Phases {
		rows = rows[:o.Phases]
	}
	for _, ph := range rows {
		share := 0.0
		if grand > 0 {
			share = float64(ph.TotalNs) / float64(grand)
		}
		fmt.Fprintf(w, "%-28s %10d %10s %10s %10s %5.1f%%\n",
			ph.Op+"."+ph.Phase, ph.Count, ns(ph.P50Ns), ns(ph.P99Ns), ns(ph.TotalNs), 100*share)
	}
	if len(d.Phases) > len(rows) {
		fmt.Fprintf(w, "  ... %d more phase rows\n", len(d.Phases)-len(rows))
	}

	if len(gauges) > 0 {
		fmt.Fprintln(w, "\ndurability:")
		sort.Strings(gauges)
		for _, g := range gauges {
			fmt.Fprintf(w, "  %s\n", g)
		}
	}

	if len(d.SlowOps) > 0 {
		fmt.Fprintf(w, "\nslow ops (last %d):\n", min(o.Slow, len(d.SlowOps)))
		shown := d.SlowOps
		if o.Slow > 0 && len(shown) > o.Slow {
			shown = shown[len(shown)-o.Slow:] // newest are at the tail
		}
		for i := len(shown) - 1; i >= 0; i-- {
			s := shown[i]
			fmt.Fprintf(w, "  %-10s %-8s %10s  %d spans%s\n",
				s.Root.Name, s.Root.Scheme, ns(uint64(s.Root.Dur)), len(s.Tree), errSuffix(s.Root.Err))
			for _, sp := range topSpans(s.Tree, 4) {
				fmt.Fprintf(w, "    %-24s %10s%s\n", sp.Name, ns(uint64(sp.Dur)), errSuffix(sp.Err))
			}
		}
	}
}

// topSpans returns the k longest spans of a slow-op tree.
func topSpans(tree []obs.SpanRecord, k int) []obs.SpanRecord {
	out := append([]obs.SpanRecord(nil), tree...)
	sort.Slice(out, func(i, j int) bool { return out[i].Dur > out[j].Dur })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func errSuffix(e string) string {
	if e == "" {
		return ""
	}
	return "  ERROR: " + e
}

// ns renders a nanosecond quantity compactly.
func ns(v uint64) string {
	return time.Duration(v).Round(time.Microsecond).String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
