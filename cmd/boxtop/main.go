// Command boxtop is a live latency console for a running boxes process
// (boxbench -metrics, boxload -metrics -linger, or any embedder serving
// obs.Handler). It polls /debug/spans — per-op and per-phase latency
// summaries plus captured slow operations — the cost-ledger and heat-map
// payload from /debug/heat, and a few durability gauges from /metrics,
// and redraws a compact dashboard each interval.
//
// Interactive runs draw into the terminal's alternate screen and restore
// the primary screen on exit, including SIGINT/SIGTERM — a Ctrl-C never
// leaves the shell stuck in the dashboard buffer.
//
// Usage:
//
//	boxtop :9100
//	boxtop -refresh 2s -phases 12 localhost:9100
//	boxtop -once :9100          # one snapshot, no screen switching (scriptable)
//	boxtop -metrics-url http://prod-host:9100 -once   # remote boxserve
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"boxes/internal/obs"
)

// Alternate-screen control sequences (xterm/DEC private modes): 1049h/l
// switch to/from the alternate buffer, 25l/h hide/show the cursor.
const (
	enterAltScreen = "\x1b[?1049h\x1b[?25l"
	leaveAltScreen = "\x1b[?25h\x1b[?1049l"
)

func main() {
	var (
		refresh = flag.Duration("refresh", 1*time.Second, "redraw interval")
		n       = flag.Int("n", 0, "number of polls before exiting (0 = forever)")
		once    = flag.Bool("once", false, "print one snapshot without switching screens and exit")
		phases  = flag.Int("phases", 16, "phase rows shown (hottest first)")
		slow    = flag.Int("slow", 5, "slow operations shown (newest first)")
		heat    = flag.Bool("heat", true, "show the cost-ledger / heat-map panel from /debug/heat")
		url     = flag.String("metrics-url", "", "metrics endpoint of a running server (e.g. http://host:9100); alternative to the positional host:port")
	)
	// -interval predates -refresh; both names drive the same duration.
	flag.DurationVar(refresh, "interval", 1*time.Second, "alias for -refresh")
	flag.Parse()
	base := *url
	if base == "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: boxtop [flags] <host:port>  |  boxtop -metrics-url <url> [flags]")
			os.Exit(2)
		}
		base = flag.Arg(0)
	} else if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "boxtop: give either -metrics-url or a positional host:port, not both")
		os.Exit(2)
	}
	if !strings.Contains(base, "://") {
		if strings.HasPrefix(base, ":") {
			base = "localhost" + base
		}
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	client := &http.Client{Timeout: 5 * time.Second}
	opts := renderOptions{Phases: *phases, Slow: *slow, Heat: *heat}

	interactive := !*once
	restore := func() {}
	if interactive {
		fmt.Fprint(os.Stdout, enterAltScreen)
		restore = func() { fmt.Fprint(os.Stdout, leaveAltScreen) }
		// A Ctrl-C (or a kill from a supervisor) must put the terminal
		// back on the primary screen before the process dies; otherwise
		// the user's shell is stranded in the alternate buffer.
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
		go func() {
			<-sigs
			restore()
			os.Exit(130)
		}()
	}

	exit := func(code int) {
		restore()
		os.Exit(code)
	}
	for i := 0; *n == 0 || i < *n; i++ {
		if i > 0 {
			time.Sleep(*refresh)
		}
		d, gauges, err := poll(client, base)
		if err != nil {
			restore()
			fmt.Fprintf(os.Stderr, "boxtop: %v\n", err)
			os.Exit(1)
		}
		var hd *obs.HeatDebugPayload
		if opts.Heat {
			// Older servers have no /debug/heat; the panel just stays off.
			hd, _ = pollHeat(client, base)
		}
		w := bufio.NewWriter(os.Stdout)
		if interactive {
			fmt.Fprint(w, "\x1b[H\x1b[2J") // home + clear
		}
		render(w, base, d, gauges, hd, opts)
		w.Flush()
		if *once {
			return
		}
	}
	exit(0)
}

// poll fetches /debug/spans and the durability gauge lines of /metrics.
func poll(client *http.Client, base string) (obs.SpansDebug, []string, error) {
	var d obs.SpansDebug
	resp, err := client.Get(base + "/debug/spans")
	if err != nil {
		return d, nil, err
	}
	err = json.NewDecoder(resp.Body).Decode(&d)
	resp.Body.Close()
	if err != nil {
		return d, nil, fmt.Errorf("decoding /debug/spans: %w", err)
	}
	gauges, err := pollGauges(client, base)
	if err != nil {
		return d, nil, err
	}
	return d, gauges, nil
}

// pollHeat fetches the cost-ledger / heat-map payload; a missing endpoint
// or decode failure disables the panel for this frame rather than killing
// the dashboard.
func pollHeat(client *http.Client, base string) (*obs.HeatDebugPayload, error) {
	resp, err := client.Get(base + "/debug/heat")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/debug/heat: %s", resp.Status)
	}
	var hd obs.HeatDebugPayload
	if err := json.NewDecoder(resp.Body).Decode(&hd); err != nil {
		return nil, fmt.Errorf("decoding /debug/heat: %w", err)
	}
	return &hd, nil
}

// gaugePrefixes selects the /metrics families worth a dashboard line: the
// WAL/group-commit behavior the trace view exists to explain.
var gaugePrefixes = []string{
	"pager_wal_syncs_per_commit",
	"pager_wal_group_size",
	"pager_wal_size_bytes",
	"pager_gc_queue_depth",
	"pager_gc_overlay_blocks",
	"serve_queue_depth",
	"serve_shed_total",
	"serve_conns_active",
}

func pollGauges(client *http.Client, base string) ([]string, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		for _, p := range gaugePrefixes {
			if strings.HasPrefix(line, p) {
				out = append(out, line)
				break
			}
		}
	}
	return out, sc.Err()
}

type renderOptions struct {
	Phases int  // max phase rows
	Slow   int  // max slow ops
	Heat   bool // show the ledger / heat panel
}

// render draws one dashboard frame. Split out from main so tests can drive
// it with a canned SpansDebug.
func render(w io.Writer, target string, d obs.SpansDebug, gauges []string, hd *obs.HeatDebugPayload, o renderOptions) {
	state := "histograms only"
	if d.TracingEnabled {
		state = "tracing on"
	}
	fmt.Fprintf(w, "boxtop  %s  (%s)  %s\n\n", target, state, time.Now().Format("15:04:05"))

	fmt.Fprintf(w, "%-16s %10s %8s %10s %10s %10s\n", "op", "count", "errors", "p50", "p99", "total")
	for _, op := range d.Ops {
		fmt.Fprintf(w, "%-16s %10d %8d %10s %10s %10s\n",
			op.Op, op.Count, op.Errors, ns(op.P50Ns), ns(op.P99Ns), ns(op.TotalNs))
	}

	fmt.Fprintf(w, "\n%-28s %10s %10s %10s %10s %6s\n", "phase", "count", "p50", "p99", "total", "share")
	var grand uint64
	for _, ph := range d.Phases {
		grand += ph.TotalNs
	}
	rows := d.Phases
	if o.Phases > 0 && len(rows) > o.Phases {
		rows = rows[:o.Phases]
	}
	for _, ph := range rows {
		share := 0.0
		if grand > 0 {
			share = float64(ph.TotalNs) / float64(grand)
		}
		fmt.Fprintf(w, "%-28s %10d %10s %10s %10s %5.1f%%\n",
			ph.Op+"."+ph.Phase, ph.Count, ns(ph.P50Ns), ns(ph.P99Ns), ns(ph.TotalNs), 100*share)
	}
	if len(d.Phases) > len(rows) {
		fmt.Fprintf(w, "  ... %d more phase rows\n", len(d.Phases)-len(rows))
	}

	if len(gauges) > 0 {
		fmt.Fprintln(w, "\ndurability:")
		sort.Strings(gauges)
		for _, g := range gauges {
			fmt.Fprintf(w, "  %s\n", g)
		}
	}

	if hd != nil {
		renderHeat(w, hd)
	}

	if len(d.SlowOps) > 0 {
		fmt.Fprintf(w, "\nslow ops (last %d):\n", min(o.Slow, len(d.SlowOps)))
		shown := d.SlowOps
		if o.Slow > 0 && len(shown) > o.Slow {
			shown = shown[len(shown)-o.Slow:] // newest are at the tail
		}
		for i := len(shown) - 1; i >= 0; i-- {
			s := shown[i]
			fmt.Fprintf(w, "  %-10s %-8s %10s  %d spans%s\n",
				s.Root.Name, s.Root.Scheme, ns(uint64(s.Root.Dur)), len(s.Tree), errSuffix(s.Root.Err))
			for _, sp := range topSpans(s.Tree, 4) {
				fmt.Fprintf(w, "    %-24s %10s%s\n", sp.Name, ns(uint64(sp.Dur)), errSuffix(sp.Err))
			}
		}
	}
}

// renderHeat draws the amortized-cost ratios and the two heat maps.
func renderHeat(w io.Writer, hd *obs.HeatDebugPayload) {
	if len(hd.Amortized) > 0 {
		fmt.Fprintln(w, "\namortized cost (per scheme, lifetime | window):")
		for _, line := range amortizedRows(hd.Amortized) {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
	cons := "ok"
	if !hd.ConservationOK {
		cons = "VIOLATED: " + hd.ConservationEr
	}
	fmt.Fprintf(w, "ledger conservation: %s\n", cons)
	for _, space := range []obs.HeatSpaceSnap{hd.Label, hd.Block} {
		drawn := false
		for _, s := range space.Series {
			if s.Samples == 0 {
				continue
			}
			if !drawn {
				fmt.Fprintf(w, "\nheat %-6s (bucket width %d):\n", space.Space, space.BucketWidth)
				drawn = true
			}
			fmt.Fprintf(w, "  %-14s %9d |%s|\n", s.Name, s.Samples, heatBar(s.Counts, 64))
		}
	}
}

// amortizedRows folds the flat amortized gauge list into one line per
// scheme: "scheme  relabels/ins 1.2 splits/ins 0.03 io/op 2.1 ...".
func amortizedRows(gs []obs.GaugeValue) []string {
	short := map[string]string{
		"boxes_amortized_relabels_per_insert":        "relabels/ins",
		"boxes_amortized_splits_per_insert":          "splits/ins",
		"boxes_amortized_ios_per_op":                 "io/op",
		"boxes_amortized_window_relabels_per_insert": "w.relabels/ins",
		"boxes_amortized_window_ios_per_op":          "w.io/op",
	}
	order := []string{"relabels/ins", "splits/ins", "io/op", "w.relabels/ins", "w.io/op"}
	byScheme := map[string]map[string]float64{}
	var schemes []string
	for _, g := range gs {
		name, ok := short[g.Name]
		if !ok {
			continue
		}
		scheme := "?"
		for _, kv := range g.Labels {
			if kv[0] == "scheme" {
				scheme = kv[1]
			}
		}
		if byScheme[scheme] == nil {
			byScheme[scheme] = map[string]float64{}
			schemes = append(schemes, scheme)
		}
		byScheme[scheme][name] = g.Value
	}
	sort.Strings(schemes)
	var out []string
	for _, scheme := range schemes {
		var b strings.Builder
		fmt.Fprintf(&b, "%-10s", scheme)
		for _, k := range order {
			if v, ok := byScheme[scheme][k]; ok {
				fmt.Fprintf(&b, "  %s %.3g", k, v)
			}
		}
		out = append(out, b.String())
	}
	return out
}

// heatRamp maps relative bucket intensity to glyphs, coldest to hottest.
const heatRamp = " .:-=+*#%@"

// heatBar compresses a bucket histogram into a width-column ASCII bar,
// scaled to the hottest compressed cell.
func heatBar(counts []uint64, width int) string {
	if width <= 0 || len(counts) == 0 {
		return ""
	}
	if width > len(counts) {
		width = len(counts)
	}
	cells := make([]uint64, width)
	var max uint64
	for i, c := range counts {
		j := i * width / len(counts)
		cells[j] += c
		if cells[j] > max {
			max = cells[j]
		}
	}
	if max == 0 {
		return strings.Repeat(" ", width)
	}
	var b strings.Builder
	for _, c := range cells {
		// Zero stays blank; any activity gets at least the faintest glyph.
		idx := 0
		if c > 0 {
			idx = 1 + int(uint64(len(heatRamp)-2)*c/max)
		}
		b.WriteByte(heatRamp[idx])
	}
	return b.String()
}

// topSpans returns the k longest spans of a slow-op tree.
func topSpans(tree []obs.SpanRecord, k int) []obs.SpanRecord {
	out := append([]obs.SpanRecord(nil), tree...)
	sort.Slice(out, func(i, j int) bool { return out[i].Dur > out[j].Dur })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func errSuffix(e string) string {
	if e == "" {
		return ""
	}
	return "  ERROR: " + e
}

// ns renders a nanosecond quantity compactly.
func ns(v uint64) string {
	return time.Duration(v).Round(time.Microsecond).String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
