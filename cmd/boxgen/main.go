// Command boxgen emits a synthetic XMark-shaped XML document, the stand-in
// for the XMark benchmark data used by the experiments.
//
// Usage:
//
//	boxgen -elements 100000 -seed 7 > auction.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"boxes/internal/xmlgen"
)

func main() {
	var (
		elements = flag.Int("elements", 10000, "minimum number of elements")
		seed     = flag.Int64("seed", 1, "generator seed")
		stats    = flag.Bool("stats", false, "print document statistics to stderr")
	)
	flag.Parse()

	tree := xmlgen.XMark(*elements, *seed)
	if *stats {
		fmt.Fprintf(os.Stderr, "boxgen: %d elements, depth %d\n", tree.Elements(), tree.Depth())
	}
	w := bufio.NewWriter(os.Stdout)
	if err := tree.WriteXML(w); err != nil {
		fmt.Fprintf(os.Stderr, "boxgen: %v\n", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "boxgen: %v\n", err)
		os.Exit(1)
	}
}
