// Command boxfsck is the offline consistency checker for stored box
// files. It runs WAL recovery (exactly as any open does), verifies every
// block checksum, walks the free list, restores the labeling structure
// and checks its invariants, and cross-references the blocks the
// structure reaches against the free list. Orphaned blocks (allocated,
// unreachable, not free) are reported and, with -repair, freed in one
// atomic transaction.
//
// Exit codes: 0 the store is clean, 1 problems were found, 2 the file
// could not be examined at all.
//
// Usage:
//
//	boxfsck labels.box
//	boxfsck -repair labels.box
//	boxfsck -v -crashdir crashes labels.box
package main

import (
	"flag"
	"fmt"
	"os"

	"boxes/internal/fsck"
)

func main() {
	var (
		repair   = flag.Bool("repair", false, "free orphaned blocks (one atomic transaction)")
		verbose  = flag.Bool("v", false, "list every finding, orphan, and recovery detail")
		crashDir = flag.String("crashdir", "", "write a flight-recorder dump here when problems are found")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: boxfsck [-repair] [-v] [-crashdir dir] <store.box>")
		os.Exit(2)
	}
	path := flag.Arg(0)

	rep, err := fsck.Check(path, fsck.Options{Repair: *repair, CrashDir: *crashDir, Verbose: *verbose})
	if err != nil {
		fmt.Fprintf(os.Stderr, "boxfsck: %s: %v\n", path, err)
		os.Exit(2)
	}

	fmt.Printf("store   : %s\n", rep.Path)
	fmt.Printf("blocks  : %d allocated, %d free, bound %d, %d bytes each\n",
		rep.Allocated, rep.FreeCount, rep.Bound, rep.BlockSize)
	if rep.Scheme != "" {
		fmt.Printf("scheme  : %s (%d labels)\n", rep.Scheme, rep.Labels)
	}
	if rec := rep.Recovery; rec.Replayed || rec.DiscardedBytes > 0 || rec.SidecarRebuilt {
		fmt.Printf("recovery: replayed=%v frames=%d discarded=%dB sidecar_rebuilt=%v\n",
			rec.Replayed, rec.ReplayedFrames, rec.DiscardedBytes, rec.SidecarRebuilt)
	}
	if len(rep.Orphans) > 0 {
		if *verbose {
			fmt.Printf("orphans : %v\n", rep.Orphans)
		} else {
			fmt.Printf("orphans : %d (rerun with -repair to free them)\n", len(rep.Orphans))
		}
	}
	if rep.Repaired > 0 {
		fmt.Printf("repaired: %d orphaned blocks freed\n", rep.Repaired)
	}
	for _, p := range rep.Problems {
		fmt.Printf("problem : %s\n", p)
	}

	if !rep.Clean() {
		fmt.Println("verdict : UNCLEAN")
		os.Exit(1)
	}
	fmt.Println("verdict : clean")
}
