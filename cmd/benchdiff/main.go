// Command benchdiff compares two BENCH_*.json snapshots written by
// boxbench -exp snap and fails when the current run regressed past a
// threshold. By default only the deterministic I/O metrics are compared
// (avg/p99/max/total I/Os per op — which in the paper's cost model *is*
// throughput), so a committed baseline stays valid on any machine; -wall
// adds the wall-clock columns for same-hardware comparisons.
//
// Usage:
//
//	benchdiff results/baseline.json BENCH_concentrated.json
//	benchdiff -threshold 0.10 -wall old.json new.json
//
// Exit status: 0 when no metric regressed, 1 when at least one did, 2 on
// unreadable files or incomparable snapshots (different experiments or
// workload parameters).
package main

import (
	"flag"
	"fmt"
	"os"

	"boxes/internal/bench"
)

func main() {
	threshold := flag.Float64("threshold", 0.25, "relative regression tolerance (0.25 = fail when 25% worse)")
	wall := flag.Bool("wall", false, "also compare wall-clock metrics (ops/sec, p99 latency); same-machine snapshots only")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] <baseline.json> <current.json>")
		os.Exit(2)
	}

	baseline, err := bench.ReadSnapshotFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	current, err := bench.ReadSnapshotFile(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	regs, err := bench.Diff(baseline, current, *threshold, *wall)
	if err != nil {
		fatal(err)
	}
	if len(regs) == 0 {
		fmt.Printf("benchdiff: %s: no regressions beyond %.0f%% (%d schemes compared)\n",
			current.Experiment, *threshold*100, len(current.Schemes))
		return
	}
	fmt.Printf("benchdiff: %s: %d regression(s) beyond %.0f%%:\n", current.Experiment, len(regs), *threshold*100)
	for _, r := range regs {
		fmt.Printf("  %s\n", r)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}
