// Command benchdiff compares two BENCH_*.json snapshots written by
// boxbench -exp snap and fails when the current run regressed past a
// threshold. By default only the deterministic I/O metrics are compared
// (avg/p99/max/total I/Os per op — which in the paper's cost model *is*
// throughput), so a committed baseline stays valid on any machine; -wall
// adds the wall-clock columns for same-hardware comparisons.
//
// Usage:
//
//	benchdiff results/baseline.json BENCH_concentrated.json
//	benchdiff -threshold 0.10 -wall old.json new.json
//	benchdiff -max 'group-8:pager_wal_syncs_per_op=0.25' base.json cur.json
//	benchdiff -min 'group-8:phase_share_commit_wait=0.2' base.json cur.json
//
// -max adds an ABSOLUTE ceiling on a gauge of the current snapshot
// (scheme:gauge=value, repeatable), independent of the baseline: the
// group-commit contract "under a quarter of an fsync per op at batch 8"
// is such a bound — a number the design promises, not a number relative
// to last week. -min is the symmetric absolute floor, for gauges whose
// collapse signals breakage — e.g. phase_share_commit_wait, the fraction
// of durable batch latency attributed to the commit path: a floor holds
// the phase-attribution plumbing itself to account for the fsync cost.
//
// Exit status: 0 when no metric regressed, 1 when at least one did, 2 on
// unreadable files or incomparable snapshots (different experiments or
// workload parameters).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"boxes/internal/bench"
)

// boundFlags collects repeatable -max/-min scheme:gauge=value assertions.
type boundFlags []boundAssert

type boundAssert struct {
	scheme, gauge string
	bound         float64
}

func (m *boundFlags) String() string { return fmt.Sprintf("%d assertions", len(*m)) }

func (m *boundFlags) Set(s string) error {
	head, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want scheme:gauge=value, got %q", s)
	}
	scheme, gauge, ok := strings.Cut(head, ":")
	if !ok {
		return fmt.Errorf("want scheme:gauge=value, got %q", s)
	}
	bound, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad bound in %q: %v", s, err)
	}
	*m = append(*m, boundAssert{scheme: scheme, gauge: gauge, bound: bound})
	return nil
}

// checkBound verifies one absolute ceiling (floor=false) or floor
// (floor=true) against the current snapshot. The addressed scheme and
// gauge must exist: a silently missing metric would turn the gate into a
// no-op.
func checkBound(current bench.SnapshotFile, a boundAssert, floor bool) error {
	for _, s := range current.Schemes {
		if s.Scheme != a.scheme {
			continue
		}
		for key, v := range s.Gauges {
			if key == a.gauge || strings.HasPrefix(key, a.gauge+"{") {
				if !floor && v > a.bound {
					return fmt.Errorf("scheme %s metric %s: current %.4g exceeds absolute ceiling %.4g (-max gate)", a.scheme, a.gauge, v, a.bound)
				}
				if floor && v < a.bound {
					return fmt.Errorf("scheme %s metric %s: current %.4g below absolute floor %.4g (-min gate)", a.scheme, a.gauge, v, a.bound)
				}
				return nil
			}
		}
		return fmt.Errorf("scheme %s has no gauge %s", a.scheme, a.gauge)
	}
	return fmt.Errorf("snapshot has no scheme %s", a.scheme)
}

func main() {
	threshold := flag.Float64("threshold", 0.25, "relative regression tolerance (0.25 = fail when 25% worse)")
	wall := flag.Bool("wall", false, "also compare wall-clock metrics (ops/sec, p99 latency); same-machine snapshots only")
	var maxes, mins boundFlags
	flag.Var(&maxes, "max", "absolute gauge ceiling on the current snapshot, scheme:gauge=value (repeatable)")
	flag.Var(&mins, "min", "absolute gauge floor on the current snapshot, scheme:gauge=value (repeatable)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] <baseline.json> <current.json>")
		os.Exit(2)
	}

	baseline, err := bench.ReadSnapshotFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	current, err := bench.ReadSnapshotFile(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	regs, err := bench.Diff(baseline, current, *threshold, *wall)
	if err != nil {
		fatal(err)
	}
	failedBounds := 0
	for _, a := range maxes {
		if err := checkBound(current, a, false); err != nil {
			fmt.Printf("benchdiff: %s: ceiling violated: %v\n", current.Experiment, err)
			failedBounds++
		}
	}
	for _, a := range mins {
		if err := checkBound(current, a, true); err != nil {
			fmt.Printf("benchdiff: %s: floor violated: %v\n", current.Experiment, err)
			failedBounds++
		}
	}
	if len(regs) == 0 {
		fmt.Printf("benchdiff: %s: no regressions beyond %.0f%% (%d schemes compared, %d bounds held)\n",
			current.Experiment, *threshold*100, len(current.Schemes), len(maxes)+len(mins)-failedBounds)
		if failedBounds > 0 {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("benchdiff: %s: %d regression(s) beyond %.0f%%:\n", current.Experiment, len(regs), *threshold*100)
	for _, r := range regs {
		fmt.Printf("  scheme %-10s metric %-36s baseline %.4g -> current %.4g (%.2fx worse; allowed up to %.4g at threshold +%.0f%%)\n",
			r.Scheme, r.Metric, r.Old, r.New, r.Ratio, r.Old*(1+*threshold), *threshold*100)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}
