// Command benchdiff compares two BENCH_*.json snapshots written by
// boxbench -exp snap and fails when the current run regressed past a
// threshold. By default only the deterministic I/O metrics are compared
// (avg/p99/max/total I/Os per op — which in the paper's cost model *is*
// throughput), so a committed baseline stays valid on any machine; -wall
// adds the wall-clock columns for same-hardware comparisons.
//
// Usage:
//
//	benchdiff results/baseline.json BENCH_concentrated.json
//	benchdiff -threshold 0.10 -wall old.json new.json
//	benchdiff -max 'group-8:pager_wal_syncs_per_op=0.25' base.json cur.json
//
// -max adds an ABSOLUTE ceiling on a gauge of the current snapshot
// (scheme:gauge=value, repeatable), independent of the baseline: the
// group-commit contract "under a quarter of an fsync per op at batch 8"
// is such a bound — a number the design promises, not a number relative
// to last week.
//
// Exit status: 0 when no metric regressed, 1 when at least one did, 2 on
// unreadable files or incomparable snapshots (different experiments or
// workload parameters).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"boxes/internal/bench"
)

// maxFlags collects repeatable -max scheme:gauge=value assertions.
type maxFlags []maxAssert

type maxAssert struct {
	scheme, gauge string
	ceiling       float64
}

func (m *maxFlags) String() string { return fmt.Sprintf("%d assertions", len(*m)) }

func (m *maxFlags) Set(s string) error {
	head, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want scheme:gauge=value, got %q", s)
	}
	scheme, gauge, ok := strings.Cut(head, ":")
	if !ok {
		return fmt.Errorf("want scheme:gauge=value, got %q", s)
	}
	ceiling, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad ceiling in %q: %v", s, err)
	}
	*m = append(*m, maxAssert{scheme: scheme, gauge: gauge, ceiling: ceiling})
	return nil
}

// checkMax verifies one absolute ceiling against the current snapshot.
// The addressed scheme and gauge must exist: a silently missing metric
// would turn the gate into a no-op.
func checkMax(current bench.SnapshotFile, a maxAssert) error {
	for _, s := range current.Schemes {
		if s.Scheme != a.scheme {
			continue
		}
		for key, v := range s.Gauges {
			if key == a.gauge || strings.HasPrefix(key, a.gauge+"{") {
				if v > a.ceiling {
					return fmt.Errorf("%s %s = %.4g exceeds ceiling %.4g", a.scheme, a.gauge, v, a.ceiling)
				}
				return nil
			}
		}
		return fmt.Errorf("scheme %s has no gauge %s", a.scheme, a.gauge)
	}
	return fmt.Errorf("snapshot has no scheme %s", a.scheme)
}

func main() {
	threshold := flag.Float64("threshold", 0.25, "relative regression tolerance (0.25 = fail when 25% worse)")
	wall := flag.Bool("wall", false, "also compare wall-clock metrics (ops/sec, p99 latency); same-machine snapshots only")
	var maxes maxFlags
	flag.Var(&maxes, "max", "absolute gauge ceiling on the current snapshot, scheme:gauge=value (repeatable)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] <baseline.json> <current.json>")
		os.Exit(2)
	}

	baseline, err := bench.ReadSnapshotFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	current, err := bench.ReadSnapshotFile(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	regs, err := bench.Diff(baseline, current, *threshold, *wall)
	if err != nil {
		fatal(err)
	}
	failedMax := 0
	for _, a := range maxes {
		if err := checkMax(current, a); err != nil {
			fmt.Printf("benchdiff: %s: ceiling violated: %v\n", current.Experiment, err)
			failedMax++
		}
	}
	if len(regs) == 0 {
		fmt.Printf("benchdiff: %s: no regressions beyond %.0f%% (%d schemes compared, %d ceilings held)\n",
			current.Experiment, *threshold*100, len(current.Schemes), len(maxes)-failedMax)
		if failedMax > 0 {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("benchdiff: %s: %d regression(s) beyond %.0f%%:\n", current.Experiment, len(regs), *threshold*100)
	for _, r := range regs {
		fmt.Printf("  %s\n", r)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}
