// Command boxsim runs the deterministic simulation harness: randomized
// operation histories with composed disk faults (crashes, torn writes,
// ENOSPC, fsync failures, transient flakes, crashes during WAL redo)
// against any labeling scheme, checked against an in-memory oracle after
// every recovery. Every history is a pure function of its seed, so every
// failure replays byte-identically from the seed boxsim prints.
//
//	boxsim -smoke                          the fixed-seed CI gate (all schemes)
//	boxsim -seeds 50 -scheme wbox          50 randomized-base seeds, one scheme
//	boxsim -seed 1337 -scheme bbox -mix churn -ops 500
//	boxsim -replay out/seed7-wbox-churn/minimized.json
//
// On failure boxsim minimizes the history (unless -minimize=false) and
// writes replayable artifacts under -out: trace.json (the full failing
// trace), minimized.json (the shrunk one) and report.json. Exit status:
// 0 all histories passed, 1 at least one failed, 2 bad usage or setup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"boxes/internal/difftest"
	"boxes/internal/sim"
	"boxes/internal/wbox"
)

func main() {
	// Harness self-test: re-introduce the PR-4 W-BOX tombstone-strand bug
	// so CI can prove the full find -> minimize -> artifact -> replay path
	// end to end through this binary (see internal/wbox/testhooks.go).
	if os.Getenv("BOXSIM_TESTHOOK_STRAND") == "1" {
		wbox.HookStrandEmptyTree = true
	}
	var (
		seed     = flag.Int64("seed", -1, "run exactly this seed")
		seeds    = flag.Int("seeds", 0, "run seeds base..base+n-1 (see -seed-base)")
		seedBase = flag.Int64("seed-base", 1, "first seed for -seeds")
		smoke    = flag.Bool("smoke", false, "fixed-seed smoke gate: all schemes, mixed+churn, seeds 1..3")
		scheme   = flag.String("scheme", "wbox", "scheme under test (or 'all')")
		mix      = flag.String("mix", "mixed", "operation mix: mixed, churn, adv-front, adv-bisect (or 'all')")
		ops      = flag.Int("ops", 300, "operations per history")
		rate     = flag.Float64("fault-rate", 0.08, "fault events per op slot")
		verify   = flag.Int("verify-every", 64, "full oracle check every n committed ops")
		minimize = flag.Bool("minimize", true, "shrink failing histories before reporting")
		budget   = flag.Int("minimize-budget", sim.DefaultMinimizeBudget, "max histories the minimizer may run")
		out      = flag.String("out", "boxsim-out", "artifact directory for failures")
		replay   = flag.String("replay", "", "replay a trace.json artifact instead of generating histories")
	)
	flag.Parse()

	if *replay != "" {
		os.Exit(replayTrace(*replay))
	}

	var schemes []string
	if *scheme == "all" {
		for _, c := range difftest.Configs() {
			schemes = append(schemes, c.Name)
		}
	} else {
		schemes = []string{*scheme}
	}
	mixes := []string{*mix}
	if *mix == "all" {
		mixes = sim.Mixes()
	}

	var cfgs []sim.Config
	switch {
	case *smoke:
		cfgs = smokeConfigs()
	case *seed >= 0:
		for _, s := range schemes {
			for _, m := range mixes {
				cfgs = append(cfgs, sim.Config{Seed: *seed, Scheme: s, Mix: m, Ops: *ops, FaultRate: *rate, VerifyEvery: *verify})
			}
		}
	case *seeds > 0:
		for i := 0; i < *seeds; i++ {
			for _, s := range schemes {
				for _, m := range mixes {
					cfgs = append(cfgs, sim.Config{Seed: *seedBase + int64(i), Scheme: s, Mix: m, Ops: *ops, FaultRate: *rate, VerifyEvery: *verify})
				}
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "boxsim: one of -smoke, -seed, -seeds or -replay is required")
		flag.Usage()
		os.Exit(2)
	}

	failures := 0
	for _, cfg := range cfgs {
		// Print the seed BEFORE running: a hung or crashed-out history
		// must still be reproducible from the log.
		fmt.Printf("boxsim: seed=%d scheme=%s mix=%s ops=%d fault-rate=%g\n",
			cfg.Seed, cfg.Scheme, cfg.Mix, cfg.Ops, cfg.FaultRate)
		if !runOne(cfg, *minimize, *budget, *out) {
			failures++
		}
	}
	fmt.Printf("boxsim: %d histories, %d failed\n", len(cfgs), failures)
	if failures > 0 {
		os.Exit(1)
	}
}

// smokeConfigs mirrors internal/sim's TestSimSmoke: fixed seeds, every
// scheme, the balanced and delete-heavy mixes.
func smokeConfigs() []sim.Config {
	var cfgs []sim.Config
	for _, c := range difftest.Configs() {
		for _, m := range []string{sim.MixMixed, sim.MixChurn} {
			for s := int64(1); s <= 3; s++ {
				cfgs = append(cfgs, sim.Config{Seed: s, Scheme: c.Name, Mix: m, Ops: 150, FaultRate: 0.08})
			}
		}
	}
	return cfgs
}

func runOne(cfg sim.Config, minimize bool, budget int, out string) bool {
	rep, err := sim.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "boxsim: setup: %v\n", err)
		os.Exit(2)
	}
	if rep.Failure == nil {
		fmt.Printf("  ok: ops=%d restarts=%d redo-crashes=%d aborts=%d faults=%d digest=%.16s\n",
			rep.Stats.Ops, rep.Stats.Restarts, rep.Stats.RedoCrashes, rep.Stats.Aborts, rep.Stats.Faults, rep.ExecDigest)
		return true
	}
	fmt.Printf("  FAIL: %v\n", rep.Failure)
	fmt.Printf("  replay with: boxsim -seed %d -scheme %s -mix %s -ops %d -fault-rate %g\n",
		cfg.Seed, cfg.Scheme, cfg.Mix, cfg.Ops, cfg.FaultRate)

	dir := filepath.Join(out, fmt.Sprintf("seed%d-%s-%s", cfg.Seed, cfg.Scheme, cfg.Mix))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "boxsim: artifacts: %v\n", err)
		return false
	}
	// Flight-recorder dumps from the failing store land next to the traces.
	cfg.ArtifactDir = dir
	trace, err := sim.GenTrace(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "boxsim: %v\n", err)
		return false
	}
	writeJSON(filepath.Join(dir, "report.json"), rep)
	if err := sim.SaveTrace(filepath.Join(dir, "trace.json"), cfg, trace); err != nil {
		fmt.Fprintf(os.Stderr, "boxsim: artifacts: %v\n", err)
	}
	if minimize {
		mres, err := sim.Minimize(cfg, trace, rep.Failure, budget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "boxsim: minimize: %v\n", err)
		} else if mres.Report.Failure != nil {
			fmt.Printf("  minimized: %d -> %d events in %d runs: %v\n",
				len(trace), len(mres.Events), mres.Runs, mres.Report.Failure)
			if err := sim.SaveTrace(filepath.Join(dir, "minimized.json"), cfg, mres.Events); err != nil {
				fmt.Fprintf(os.Stderr, "boxsim: artifacts: %v\n", err)
			}
			writeJSON(filepath.Join(dir, "minimized-report.json"), mres.Report)
		}
	}
	fmt.Printf("  artifacts: %s\n", dir)
	return false
}

func replayTrace(path string) int {
	cfg, trace, err := sim.LoadTrace(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "boxsim: %v\n", err)
		return 2
	}
	fmt.Printf("boxsim: replaying %s (seed=%d scheme=%s mix=%s, %d events)\n",
		path, cfg.Seed, cfg.Scheme, cfg.Mix, len(trace))
	rep, err := sim.RunTrace(cfg, trace)
	if err != nil {
		fmt.Fprintf(os.Stderr, "boxsim: %v\n", err)
		return 2
	}
	if rep.Failure != nil {
		fmt.Printf("  FAIL: %v\n  exec digest: %s\n", rep.Failure, rep.ExecDigest)
		return 1
	}
	fmt.Printf("  ok: ops=%d restarts=%d digest=%.16s\n", rep.Stats.Ops, rep.Stats.Restarts, rep.ExecDigest)
	return 0
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", " ")
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "boxsim: artifacts: %v\n", err)
	}
}
