// Command boxload bulk-loads an XML document into a labeling scheme,
// verifies the structure, reports labeling statistics, and optionally runs
// containment-join or twig queries over the labels.
//
// Usage:
//
//	boxload -scheme wbox doc.xml
//	boxload -scheme bbox -join open_auction,increase doc.xml
//	boxload -scheme wboxo -twig '//open_auction//bidder/increase' doc.xml
//	boxgen -elements 50000 | boxload -scheme bbox -ordinal -
//	boxgen -elements 2000 | boxload -scheme bbox -save doc.box -durable -batch 8 -group-commit 8 -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"boxes/internal/core"
	"boxes/internal/fsck"
	"boxes/internal/obs"
	"boxes/internal/pager"
	"boxes/internal/query"
	"boxes/internal/xmlgen"
)

func main() {
	var (
		scheme   = flag.String("scheme", "wbox", "labeling scheme: wbox | wboxo | bbox | naive")
		ordinal  = flag.Bool("ordinal", false, "enable ordinal labeling support")
		naiveK   = flag.Int("k", 16, "gap bits for -scheme naive")
		block    = flag.Int("block", 8192, "block size in bytes")
		join     = flag.String("join", "", "containment join: ancestorName,descendantName")
		twig     = flag.String("twig", "", "linear twig pattern, e.g. //open_auction//bidder/increase")
		pattern  = flag.String("pattern", "", "branching pattern, e.g. //open_auction[//bidder/increase][/seller]")
		check    = flag.Bool("check", true, "verify structural invariants after loading")
		saveTo   = flag.String("save", "", "persist the labeling store to this file after loading")
		runFsck  = flag.Bool("fsck", false, "with -save: close the store and run an offline fsck over the file")
		durable  = flag.Bool("durable", false, "with -save: route every mutation through the write-ahead log")
		batch    = flag.Int("batch", 0, "load element-wise in ApplyBatch transactions of N inserts (0 = one bulk load)")
		groupN   = flag.Int("group-commit", 0, "with -durable: coalesce up to N transactions per WAL fsync")
		metrics  = flag.String("metrics", "", "serve /metrics and /debug/pprof on this address (\":0\" picks a port)")
		trace    = flag.String("trace", "", "record spans and write a Chrome trace-event JSON file (open in Perfetto)")
		slowOp   = flag.Duration("slow-op", 0, "log operations slower than this and keep their span trees (e.g. 5ms)")
		crashDir = flag.String("crashdir", "", "write flight-recorder crash dumps to this directory on op errors")
		linger   = flag.Bool("linger", false, "with -metrics: keep serving after the work until interrupted")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: boxload [flags] <file.xml | ->")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	tree, err := xmlgen.Parse(in)
	if err != nil {
		fatal(err)
	}

	opts := core.Options{BlockSize: *block, Ordinal: *ordinal, NaiveK: *naiveK, CrashDir: *crashDir}
	switch *scheme {
	case "wbox":
		opts.Scheme = core.SchemeWBox
	case "wboxo":
		opts.Scheme = core.SchemeWBoxO
	case "bbox":
		opts.Scheme = core.SchemeBBox
	case "naive":
		opts.Scheme = core.SchemeNaive
	default:
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}
	if *runFsck && *saveTo == "" {
		fatal(fmt.Errorf("-fsck needs -save (there is no file to check otherwise)"))
	}
	if *durable && *saveTo == "" {
		fatal(fmt.Errorf("-durable needs -save (the WAL lives next to the store file)"))
	}
	if *groupN > 0 && !*durable {
		fatal(fmt.Errorf("-group-commit needs -durable (it batches WAL fsyncs)"))
	}
	opts.Durable = *durable
	if *groupN > 0 {
		opts.Durability = &pager.Durability{Every: *groupN}
	}
	var fb *pager.FileBackend
	if *saveTo != "" {
		var err error
		fb, err = pager.CreateFile(*saveTo, *block)
		if err != nil {
			fatal(err)
		}
		opts.Backend = fb
	}
	if *metrics != "" || *trace != "" {
		opts.Metrics = obs.NewRegistry()
	}
	if *metrics != "" {
		ln, err := obs.Serve(*metrics, opts.Metrics)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		fmt.Printf("metrics : http://%s/metrics (pprof under /debug/pprof/)\n", ln.Addr())
	}
	if *trace != "" {
		opts.Metrics.Tracer().Start(obs.TraceOptions{SlowOp: *slowOp})
	}
	opts.SlowOpThreshold = *slowOp
	st, err := core.Open(opts)
	if err != nil {
		fatal(err)
	}
	if *trace != "" {
		defer func() {
			f, err := os.Create(*trace)
			if err == nil {
				err = obs.WriteChromeTrace(f, st.MetricsRegistry().Tracer())
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fatal(fmt.Errorf("trace: %w", err))
			}
			fmt.Printf("trace   : wrote %s (load in Perfetto / chrome://tracing)\n", *trace)
		}()
	}
	if *groupN > 0 {
		// A sequential loader only benefits from group commit when it does
		// not wait for each transaction's fsync: defer durability so the
		// committer coalesces the stream, then settle the last ticket below
		// (commits are ordered, so the last ticket implies all of them).
		st.SetDeferredDurability(true)
	}

	start := time.Now()
	var doc *core.Document
	if *batch > 0 {
		doc, err = st.LoadBatched(tree, *batch)
	} else {
		doc, err = st.Load(tree)
	}
	if err != nil {
		fatal(err)
	}
	if *groupN > 0 {
		if err := st.TakeTicket().Wait(); err != nil {
			fatal(err)
		}
	}
	loadIO := st.Stats()
	if *batch > 0 {
		fmt.Printf("mode    : element-wise load, ApplyBatch transactions of %d inserts\n", *batch)
	}
	fmt.Printf("loaded  : %d elements (%d labels) in %v\n", tree.Elements(), st.Count(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("scheme  : %s  height=%d  label_bits=%d  blocks=%d\n", opts.Scheme, st.Height(), st.LabelBits(), st.Blocks())
	fmt.Printf("load i/o: %v\n", loadIO)
	if *durable {
		ws := fb.WALStats()
		groupSize := 0.0
		if ws.GroupCommits > 0 {
			groupSize = float64(ws.GroupedTxns) / float64(ws.GroupCommits)
		}
		fmt.Printf("wal     : %d commits, %d fsyncs, %d grouped txns in %d groups (mean %.2f txns/group)\n",
			ws.Commits, ws.Syncs, ws.GroupedTxns, ws.GroupCommits, groupSize)
	}

	if *check {
		if err := st.CheckInvariants(); err != nil {
			fatal(fmt.Errorf("invariant check failed: %w", err))
		}
		fmt.Println("check   : all structural invariants hold")
	}

	if *join != "" {
		parts := strings.SplitN(*join, ",", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("-join wants ancestorName,descendantName"))
		}
		st.ResetStats()
		anc, err := doc.SpansOf(parts[0])
		if err != nil {
			fatal(err)
		}
		desc, err := doc.SpansOf(parts[1])
		if err != nil {
			fatal(err)
		}
		pairs := query.ContainmentJoin(anc, desc)
		fmt.Printf("join    : %s (%d) x %s (%d) -> %d pairs, %v\n",
			parts[0], len(anc), parts[1], len(desc), len(pairs), st.Stats())
	}

	if *twig != "" {
		st.ResetStats()
		elems, err := doc.LabeledElems()
		if err != nil {
			fatal(err)
		}
		matches := query.Match(elems, query.ParseTwig(*twig))
		fmt.Printf("twig    : %s -> %d matches, %v\n", *twig, len(matches), st.Stats())
	}

	if *pattern != "" {
		pt, err := query.ParsePattern(*pattern)
		if err != nil {
			fatal(err)
		}
		st.ResetStats()
		elems, err := doc.LabeledElems()
		if err != nil {
			fatal(err)
		}
		matches := query.MatchPattern(elems, pt)
		fmt.Printf("pattern : %s -> %d matches, %v\n", pt, len(matches), st.Stats())
	}

	if *saveTo != "" {
		if err := st.Save(); err != nil {
			fatal(err)
		}
		fmt.Printf("saved   : %s (%d blocks); resume with boxes.OpenExisting\n", *saveTo, st.Blocks())
		if *runFsck {
			if err := fb.Close(); err != nil {
				fatal(err)
			}
			rep, err := fsck.Check(*saveTo, fsck.Options{CrashDir: *crashDir})
			if err != nil {
				fatal(fmt.Errorf("fsck: %w", err))
			}
			for _, p := range rep.Problems {
				fmt.Printf("fsck    : %s\n", p)
			}
			if !rep.Clean() {
				fatal(fmt.Errorf("fsck: %s is UNCLEAN (%d problems)", *saveTo, len(rep.Problems)))
			}
			fmt.Printf("fsck    : clean (%d allocated, %d free, %d orphans)\n",
				rep.Allocated, rep.FreeCount, len(rep.Orphans))
		}
	}

	if *metrics != "" {
		// The store is quiescent now, so scrape-time health walks cannot
		// race the single-writer ops above.
		st.RegisterHealthGauges()
		if *linger {
			fmt.Println("lingering: metrics endpoint (with health gauges) stays up until interrupted")
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
			sig := <-ch
			fmt.Printf("shutdown: caught %v, draining commits and closing the store\n", sig)
		}
	}
	// -fsck already closed the backend to hand the file to the checker;
	// otherwise shut down cleanly: drain any queued group commits, sync,
	// and release the files.
	if !(*saveTo != "" && *runFsck) {
		if err := st.Close(); err != nil {
			fatal(fmt.Errorf("close: %w", err))
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "boxload: %v\n", err)
	os.Exit(1)
}
