GO ?= go

.PHONY: all build test race bench check experiments experiments-paper-scale clean

all: build test

# Everything CI runs: vet, build, and the full test suite under the race
# detector.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every figure and table of the paper at laptop scale (~1 min).
experiments:
	$(GO) run ./cmd/boxbench -exp all

# The paper's own workload sizes (2M-element base document; hours, the
# naive schemes dominate).
experiments-paper-scale:
	$(GO) run ./cmd/boxbench -exp all -scale 100

clean:
	$(GO) clean ./...
