GO ?= go

# Workload for the machine-readable bench snapshots and the committed
# baselines under results/. The numbers must stay in sync with the
# baselines: benchdiff refuses to compare snapshots with different
# parameters.
BENCH_FLAGS := -base 2000 -inserts 500 -xmark 1000 -xprime 200

.PHONY: all build test race bench bench-diff bench-baseline microbench check crash-matrix scrub-matrix fsck fuzz-smoke trace-smoke experiments experiments-paper-scale clean

all: build test

# Everything the CI check job runs: vet, build, the full test suite (the
# race and crash-matrix jobs run separately; see those targets).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# The whole suite under the race detector, including the concurrent
# lookups-over-a-recovered-store walk in internal/crashmatrix and the
# readers-vs-batch-writer group-commit test in internal/core.
race:
	$(GO) test -race ./...

# Differential fuzzing on a smoke budget: every native fuzz target gets
# two minutes of coverage-guided input generation on top of the committed
# seed corpus. Finds cross-scheme divergences; failures drop a repro file
# into testdata/fuzz/ that should be committed as a regression.
fuzz-smoke:
	$(GO) test ./internal/difftest -fuzz=FuzzOps -fuzztime=2m

# The crash-point sweep: every scheme, every raw write point of a scripted
# durable workload, full cuts and torn writes, plus the corruption
# byte-flip matrix.
crash-matrix:
	$(GO) test ./internal/crashmatrix -v

# The runtime fault-tolerance sweep: transient write faults at every k-th
# raw write absorbed by bounded retries on all five scheme workloads, a
# permanent mid-workload fault flipping the store into read-only degraded
# mode with oracle-equal lookups, a hot backup taken mid-workload that
# opens fsck-clean at an exact op boundary, corruption surfacing as typed
# errors under concurrent readers, and the online scrubber / hot backup
# unit tests — then a CLI round trip: build a durable store, snapshot it,
# corrupt the original, prove fsck notices, restore, prove it is clean.
scrub-matrix:
	$(GO) test ./internal/crashmatrix -run 'TestTransientFaultSweep|TestPermanentWriteFaultDegrades|TestHotBackupDuringWorkload|TestCorruptReadsTypedUnderConcurrentReaders' -v
	$(GO) test ./internal/pager -run 'TestScrub|TestBackup' -v
	$(GO) run ./cmd/boxgen -elements 2000 -seed 1 > /tmp/boxes-scrub.xml
	$(GO) run ./cmd/boxload -scheme wbox -save /tmp/boxes-scrub.box -durable /tmp/boxes-scrub.xml
	$(GO) run ./cmd/boxbackup backup /tmp/boxes-scrub.box /tmp/boxes-scrub.bak
	printf 'garbage-bytes-for-scrub-matrix-corruption-test-0123456789abcdef' | dd of=/tmp/boxes-scrub.box bs=1 seek=16384 conv=notrunc status=none
	! $(GO) run ./cmd/boxbackup verify /tmp/boxes-scrub.box
	$(GO) run ./cmd/boxbackup restore /tmp/boxes-scrub.bak /tmp/boxes-scrub.box

# Build a small store end to end and verify it offline with boxfsck.
fsck:
	$(GO) run ./cmd/boxgen -elements 5000 -seed 1 > /tmp/boxes-fsck.xml
	$(GO) run ./cmd/boxload -scheme wbox -save /tmp/boxes-fsck.box -fsck /tmp/boxes-fsck.xml
	$(GO) run ./cmd/boxfsck -v /tmp/boxes-fsck.box

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

# Machine-readable snapshots: BENCH_<experiment>.json in the working
# directory, one per update experiment (ops, I/Os per op, latency
# percentiles, final structural gauges per scheme).
bench:
	$(GO) run ./cmd/boxbench -exp snap $(BENCH_FLAGS) -json .

# Fresh snapshots compared against the committed baselines; fails when any
# scheme's I/O cost regressed by more than 25%. The group run additionally
# gates the phase-attribution contract: in per-op mode the commit path
# (wal_commit + fsync_wait) must still account for the majority of durable
# insert latency (floor 0.5; measured ~0.9 — a collapse means the phase
# plumbing stopped attributing the fsync cost), while at batch 8 group
# commit must keep that share off the critical path (ceiling 0.05;
# measured ~0.003).
bench-diff: bench
	$(GO) run ./cmd/benchdiff -threshold 0.25 results/baseline.json BENCH_concentrated.json
	$(GO) run ./cmd/benchdiff -threshold 0.25 results/baseline-scattered.json BENCH_scattered.json
	$(GO) run ./cmd/benchdiff -threshold 0.25 results/baseline-xmark.json BENCH_xmark.json
	$(GO) run ./cmd/benchdiff -threshold 0.25 results/baseline-durable.json BENCH_durable.json
	$(GO) run ./cmd/benchdiff -threshold 0.25 \
		-max 'group-8:pager_wal_syncs_per_op=0.25' \
		-max 'group-8:phase_share_commit_wait=0.05' \
		-min 'per-op:phase_share_commit_wait=0.5' \
		results/baseline-group.json BENCH_group.json

# Regenerate the committed baselines after an intentional performance
# change (review the diff before committing).
bench-baseline:
	$(GO) run ./cmd/boxbench -exp snap $(BENCH_FLAGS) -json results
	mv results/BENCH_concentrated.json results/baseline.json
	mv results/BENCH_scattered.json results/baseline-scattered.json
	mv results/BENCH_xmark.json results/baseline-xmark.json
	mv results/BENCH_durable.json results/baseline-durable.json
	mv results/BENCH_group.json results/baseline-group.json

# Span-tracing smoke: the group-commit experiment with the Chrome trace
# exporter on (the artifact CI uploads; load it in Perfetto — the
# group-8x4 mode shows several batch spans resolved by one fsync span),
# plus the null-span guarantee that disabled tracing costs zero
# allocations on the op path.
trace-smoke:
	$(GO) run ./cmd/boxbench -exp tgroup -trace trace-tgroup.json
	$(GO) test ./internal/obs -run 'TestTracerDisabledIsNullAndAllocFree' -count=1 -v
	$(GO) test ./internal/core -run 'TestPhaseCoverageDurable|TestBatchTraceCoalescing' -count=1 -v

microbench:
	$(GO) test -bench=. -benchmem .

# Regenerate every figure and table of the paper at laptop scale (~1 min).
experiments:
	$(GO) run ./cmd/boxbench -exp all

# The paper's own workload sizes (2M-element base document; hours, the
# naive schemes dominate).
experiments-paper-scale:
	$(GO) run ./cmd/boxbench -exp all -scale 100

clean:
	$(GO) clean ./...
