GO ?= go

# Workload for the machine-readable bench snapshots and the committed
# baselines under results/. The numbers must stay in sync with the
# baselines: benchdiff refuses to compare snapshots with different
# parameters.
BENCH_FLAGS := -base 2000 -inserts 500 -xmark 1000 -xprime 200

.PHONY: all build test race lint bench bench-diff bench-baseline microbench check crash-matrix scrub-matrix fsck fuzz-smoke sim-smoke sim-seeds trace-smoke heat-smoke serve-smoke serve-baseline zoo experiments experiments-paper-scale clean

all: build test

# Static analysis: vet always; staticcheck when available. CI pins the
# staticcheck version via `go run` (see .github/workflows/ci.yml); local
# runs without it installed just skip that half rather than failing.
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (CI runs it via 'go run honnef.co/go/tools/cmd/staticcheck')"; \
	fi

# Everything the CI check job runs: vet, build, the full test suite (the
# race and crash-matrix jobs run separately; see those targets).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# The whole suite under the race detector, including the concurrent
# lookups-over-a-recovered-store walk in internal/crashmatrix and the
# readers-vs-batch-writer group-commit test in internal/core.
race:
	$(GO) test -race ./...

# Differential fuzzing on a smoke budget: every native fuzz target gets
# two minutes of coverage-guided input generation on top of the committed
# seed corpus. Finds cross-scheme divergences; failures drop a repro file
# into testdata/fuzz/ that should be committed as a regression.
fuzz-smoke:
	$(GO) test ./internal/difftest -fuzz=FuzzOps -fuzztime=2m

# Deterministic-simulation smoke gate: the fixed-seed battery (every
# scheme x the balanced and delete-heavy mixes x seeds 1..3) under
# composed fault schedules — crashes, torn writes, ENOSPC, fsync
# failures, transient flakes, crashes during WAL redo — plus the
# known-bug regression (the re-introduced tombstone-stranded W-BOX tree
# must be found, minimized and replayed byte-identically) and the
# seed-replay determinism tests. Failures drop replayable artifacts
# under boxsim-out/.
sim-smoke:
	$(GO) test ./internal/sim -count=1 -v
	$(GO) run ./cmd/boxsim -smoke -out boxsim-out

# Randomized-seed soak: fresh base seed each run (the clock), every
# scheme, every mix. boxsim prints each seed BEFORE running it, so a
# red run is replayable byte-identically from the log with
# `go run ./cmd/boxsim -seed N -scheme S -mix M`; failing histories are
# additionally minimized into boxsim-out/.
SIM_SEEDS ?= 4
sim-seeds:
	$(GO) run ./cmd/boxsim -seeds $(SIM_SEEDS) -seed-base $$(date +%s) \
		-scheme all -mix all -ops 250 -out boxsim-out

# The crash-point sweep: every scheme, every raw write point of a scripted
# durable workload, full cuts and torn writes, plus the corruption
# byte-flip matrix.
crash-matrix:
	$(GO) test ./internal/crashmatrix -v

# The runtime fault-tolerance sweep: transient write faults at every k-th
# raw write absorbed by bounded retries on all five scheme workloads, a
# permanent mid-workload fault flipping the store into read-only degraded
# mode with oracle-equal lookups, a hot backup taken mid-workload that
# opens fsck-clean at an exact op boundary, corruption surfacing as typed
# errors under concurrent readers, and the online scrubber / hot backup
# unit tests — then a CLI round trip: build a durable store, snapshot it,
# corrupt the original, prove fsck notices, restore, prove it is clean.
scrub-matrix:
	$(GO) test ./internal/crashmatrix -run 'TestTransientFaultSweep|TestPermanentWriteFaultDegrades|TestHotBackupDuringWorkload|TestCorruptReadsTypedUnderConcurrentReaders' -v
	$(GO) test ./internal/pager -run 'TestScrub|TestBackup' -v
	$(GO) run ./cmd/boxgen -elements 2000 -seed 1 > /tmp/boxes-scrub.xml
	$(GO) run ./cmd/boxload -scheme wbox -save /tmp/boxes-scrub.box -durable /tmp/boxes-scrub.xml
	$(GO) run ./cmd/boxbackup backup /tmp/boxes-scrub.box /tmp/boxes-scrub.bak
	printf 'garbage-bytes-for-scrub-matrix-corruption-test-0123456789abcdef' | dd of=/tmp/boxes-scrub.box bs=1 seek=16384 conv=notrunc status=none
	! $(GO) run ./cmd/boxbackup verify /tmp/boxes-scrub.box
	$(GO) run ./cmd/boxbackup restore /tmp/boxes-scrub.bak /tmp/boxes-scrub.box

# The adversarial workload zoo: the adaptive-source unit tests, the
# cross-scheme differential runs of every zoo workload on every document
# shape (oracle equality + strict ledger conservation), the churn
# regression that provably reaches the W-BOX dead>=live global rebuild,
# the zoo crash sweep (power cut at every write point of the churn and
# bisection workloads), and the zipf-readers-vs-churn-writer race test
# with a durable reopen mid-run.
zoo:
	$(GO) test ./internal/workload -count=1 -race -v
	$(GO) test ./internal/difftest -run 'TestZoo|TestChurn' -count=1 -v
	$(GO) test ./internal/crashmatrix -run 'TestZooCrashSweep' -count=1 -v
	$(GO) test ./internal/sim -run 'TestSimZoo|TestSimZipf|TestSimSteady' -count=1 -v

# Build a small store end to end and verify it offline with boxfsck.
fsck:
	$(GO) run ./cmd/boxgen -elements 5000 -seed 1 > /tmp/boxes-fsck.xml
	$(GO) run ./cmd/boxload -scheme wbox -save /tmp/boxes-fsck.box -fsck /tmp/boxes-fsck.xml
	$(GO) run ./cmd/boxfsck -v /tmp/boxes-fsck.box

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

# Machine-readable snapshots: BENCH_<experiment>.json in the working
# directory, one per update experiment (ops, I/Os per op, latency
# percentiles, final structural gauges per scheme).
bench:
	$(GO) run ./cmd/boxbench -exp snap $(BENCH_FLAGS) -json .

# Fresh snapshots compared against the committed baselines; fails when any
# scheme's I/O cost regressed by more than 25%. The group run additionally
# gates the phase-attribution contract: in per-op mode the commit path
# (wal_commit + fsync_wait) must still account for the majority of durable
# insert latency (floor 0.5; measured ~0.9 — a collapse means the phase
# plumbing stopped attributing the fsync cost), while at batch 8 group
# commit must keep that share off the critical path (ceiling 0.05;
# measured ~0.003).
#
# The scattered run additionally gates the paper's amortized bounds via the
# cost ledger: W-BOX must keep its amortized relabeled-records-per-insert
# constant (measured 8 — one leaf rewrite per insert; ceiling 16), while
# naive-1 must still exhibit the unbounded whole-document sweeps the
# Bulánek–Koucký–Saks lower bound forces (measured ~4500 at this workload
# size; floor 1000 — a collapse of THIS number means the ledger stopped
# attributing relabeling, not that naive got fast).
# The adv run gates the lower-bound headline: under the BKS bisection
# adversary naive-8's amortized relabeled records per insert collapses to
# whole-document sweeps (measured ~554 at this size, linear in N; floor
# 300), while W-BOX stays a small constant (measured ~3.8 from empty;
# ceiling 8 = 2x its uniform-scattered baseline value) and B-BOX relabels
# nothing at all (ceiling 0.5) — the paper's "any insertion sequence"
# claim as an absolute CI gate.
bench-diff: bench
	$(GO) run ./cmd/benchdiff -threshold 0.25 results/baseline.json BENCH_concentrated.json
	$(GO) run ./cmd/benchdiff -threshold 0.25 \
		-max 'W-BOX:boxes_amortized_relabels_per_insert=16' \
		-min 'naive-1:boxes_amortized_relabels_per_insert=1000' \
		results/baseline-scattered.json BENCH_scattered.json
	$(GO) run ./cmd/benchdiff -threshold 0.25 results/baseline-xmark.json BENCH_xmark.json
	$(GO) run ./cmd/benchdiff -threshold 0.25 results/baseline-durable.json BENCH_durable.json
	$(GO) run ./cmd/benchdiff -threshold 0.25 \
		-max 'group-8:pager_wal_syncs_per_op=0.25' \
		-max 'group-8:phase_share_commit_wait=0.05' \
		-min 'per-op:phase_share_commit_wait=0.5' \
		results/baseline-group.json BENCH_group.json
	$(GO) run ./cmd/benchdiff -threshold 0.25 \
		-min 'naive-8:boxes_amortized_relabels_per_insert=300' \
		-max 'W-BOX:boxes_amortized_relabels_per_insert=8' \
		-max 'B-BOX:boxes_amortized_relabels_per_insert=0.5' \
		results/baseline-adv.json BENCH_adv.json

# Regenerate the committed baselines after an intentional performance
# change (review the diff before committing).
bench-baseline:
	$(GO) run ./cmd/boxbench -exp snap $(BENCH_FLAGS) -json results
	mv results/BENCH_concentrated.json results/baseline.json
	mv results/BENCH_scattered.json results/baseline-scattered.json
	mv results/BENCH_xmark.json results/baseline-xmark.json
	mv results/BENCH_durable.json results/baseline-durable.json
	mv results/BENCH_group.json results/baseline-group.json
	mv results/BENCH_adv.json results/baseline-adv.json

# Heat-map smoke: run the scattered-insertion experiment (the workload the
# amortized gates watch) with the metrics endpoint up, snapshot /debug/heat
# into heat-scattered.json (the artifact CI uploads), and assert the live
# conservation check inside the payload passed. The server lingers after
# the workload, so the snapshot is quiescent and exact.
heat-smoke:
	$(GO) build -o /tmp/boxbench-heat ./cmd/boxbench
	rm -f /tmp/boxes-heat.log
	/tmp/boxbench-heat -exp fig7 -base 2000 -inserts 500 -metrics 127.0.0.1:9310 -linger \
		> /tmp/boxes-heat.log 2>&1 & echo $$! > /tmp/boxes-heat.pid
	@for i in $$(seq 1 120); do grep -q lingering /tmp/boxes-heat.log && break; sleep 1; done; \
		grep -q lingering /tmp/boxes-heat.log || { echo "boxbench never reached linger:"; cat /tmp/boxes-heat.log; kill $$(cat /tmp/boxes-heat.pid); exit 1; }
	curl -fsS http://127.0.0.1:9310/debug/heat > heat-scattered.json
	curl -fsS http://127.0.0.1:9310/metrics | grep -E 'boxes_amortized_|boxes_heat_|boxes_cost_' > heat-gauges.txt
	kill $$(cat /tmp/boxes-heat.pid)
	grep -q '"conservation_ok":true' heat-scattered.json
	grep -q '"name":"inserts"' heat-scattered.json
	@echo "heat-smoke: conservation ok; snapshot in heat-scattered.json"

# Workload for the served-load snapshot and its committed baseline;
# benchdiff refuses to compare snapshots with different parameters, so
# serve-smoke and serve-baseline must agree on these.
SERVE_LOAD_FLAGS := -conns 4 -ops 2000 -seed 1

# Network-service smoke: start boxserve, run the benchdiff-gated zipf
# load, then a churn load while the server injects connection faults
# (every 7th response write kills the connection — clients must retry
# and the session dedup must keep every op exactly-once), SIGTERM a
# graceful drain, and verify the store offline with boxfsck. The gate
# floors acked ops (a collapse means retry/dedup broke) and compares the
# snapshot against the committed baseline in results/.
serve-smoke:
	$(GO) build -o /tmp/boxserve-smoke ./cmd/boxserve
	$(GO) build -o /tmp/boxclient-smoke ./cmd/boxclient
	-@kill $$(cat /tmp/boxes-serve.pid 2>/dev/null) 2>/dev/null; sleep 1
	rm -f /tmp/boxes-serve.box /tmp/boxes-serve.log
	/tmp/boxserve-smoke -store /tmp/boxes-serve.box -addr 127.0.0.1:9420 -metrics 127.0.0.1:9421 \
		-fault-kth 7 -fault-mode crash -fault-seed 3 \
		> /tmp/boxes-serve.log 2>&1 & echo $$! > /tmp/boxes-serve.pid
	@for i in $$(seq 1 60); do grep -q serving /tmp/boxes-serve.log && break; sleep 1; done; \
		grep -q serving /tmp/boxes-serve.log || { echo "boxserve never came up:"; cat /tmp/boxes-serve.log; exit 1; }
	/tmp/boxclient-smoke -addr 127.0.0.1:9420 -load -source zipf $(SERVE_LOAD_FLAGS) -json .
	/tmp/boxclient-smoke -addr 127.0.0.1:9420 -load -source churn $(SERVE_LOAD_FLAGS)
	curl -fsS http://127.0.0.1:9421/metrics | grep -E '^serve_requests_total|^serve_sessions|^pager_wal_size_bytes'
	kill -TERM $$(cat /tmp/boxes-serve.pid)
	@for i in $$(seq 1 60); do grep -q 'closed' /tmp/boxes-serve.log && break; sleep 1; done; \
		grep -q 'closed' /tmp/boxes-serve.log || { echo "drain did not complete:"; cat /tmp/boxes-serve.log; exit 1; }
	$(GO) run ./cmd/boxfsck -v /tmp/boxes-serve.box
	$(GO) run ./cmd/benchdiff -min 'zipf:serve_acked=1900' \
		results/baseline-serve.json BENCH_serve.json
	@echo "serve-smoke: faults absorbed, drain clean, store fsck-clean"

# Regenerate the committed served-load baseline after an intentional
# change to the serve layer (fault-free run; review the diff).
serve-baseline:
	$(GO) build -o /tmp/boxserve-smoke ./cmd/boxserve
	$(GO) build -o /tmp/boxclient-smoke ./cmd/boxclient
	-@kill $$(cat /tmp/boxes-serve-base.pid 2>/dev/null) 2>/dev/null; sleep 1
	rm -f /tmp/boxes-serve-base.box /tmp/boxes-serve-base.log
	/tmp/boxserve-smoke -store /tmp/boxes-serve-base.box -addr 127.0.0.1:9422 \
		> /tmp/boxes-serve-base.log 2>&1 & echo $$! > /tmp/boxes-serve-base.pid
	@for i in $$(seq 1 60); do grep -q serving /tmp/boxes-serve-base.log && break; sleep 1; done
	/tmp/boxclient-smoke -addr 127.0.0.1:9422 -load -source zipf $(SERVE_LOAD_FLAGS) -json results
	kill -TERM $$(cat /tmp/boxes-serve-base.pid)
	mv results/BENCH_serve.json results/baseline-serve.json

# Span-tracing smoke: the group-commit experiment with the Chrome trace
# exporter on (the artifact CI uploads; load it in Perfetto — the
# group-8x4 mode shows several batch spans resolved by one fsync span),
# plus the null-span guarantee that disabled tracing costs zero
# allocations on the op path.
trace-smoke:
	$(GO) run ./cmd/boxbench -exp tgroup -trace trace-tgroup.json
	$(GO) test ./internal/obs -run 'TestTracerDisabledIsNullAndAllocFree' -count=1 -v
	$(GO) test ./internal/core -run 'TestPhaseCoverageDurable|TestBatchTraceCoalescing' -count=1 -v

microbench:
	$(GO) test -bench=. -benchmem .

# Regenerate every figure and table of the paper at laptop scale (~1 min).
experiments:
	$(GO) run ./cmd/boxbench -exp all

# The paper's own workload sizes (2M-element base document; hours, the
# naive schemes dominate).
experiments-paper-scale:
	$(GO) run ./cmd/boxbench -exp all -scale 100

clean:
	$(GO) clean ./...
