package boxes

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	for _, scheme := range []Scheme{WBox, WBoxO, BBox} {
		t.Run(scheme.String(), func(t *testing.T) {
			st, err := Open(Options{Scheme: scheme})
			if err != nil {
				t.Fatal(err)
			}
			doc, err := st.Load(GenerateXMark(2000, 1))
			if err != nil {
				t.Fatal(err)
			}
			root, err := st.LookupSpan(doc.Elems[0])
			if err != nil {
				t.Fatal(err)
			}
			child, err := st.LookupSpan(doc.Elems[1])
			if err != nil {
				t.Fatal(err)
			}
			if !root.Contains(child) {
				t.Fatal("root does not contain its child")
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPublicParseXML(t *testing.T) {
	tree, err := ParseXML(strings.NewReader("<a><b/><c><d/></c></a>"))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Elements() != 4 {
		t.Fatalf("elements = %d", tree.Elements())
	}
	st, err := Open(Options{Scheme: BBox})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(tree); err != nil {
		t.Fatal(err)
	}
}

func TestPublicJoinAndTwig(t *testing.T) {
	st, err := Open(Options{Scheme: WBoxO})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := st.Load(GenerateXMark(3000, 2))
	if err != nil {
		t.Fatal(err)
	}
	anc, err := doc.SpansOf("open_auction")
	if err != nil {
		t.Fatal(err)
	}
	desc, err := doc.SpansOf("increase")
	if err != nil {
		t.Fatal(err)
	}
	pairs := ContainmentJoin(anc, desc)
	if len(pairs) != len(desc) {
		t.Fatalf("%d pairs for %d increases", len(pairs), len(desc))
	}
	elems, err := doc.LabeledElems()
	if err != nil {
		t.Fatal(err)
	}
	if got := MatchTwig(elems, ParseTwig("//open_auction//increase")); len(got) != len(desc) {
		t.Fatalf("twig matched %d, want %d", len(got), len(desc))
	}
}

func TestPublicFileBackend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.box")
	fb, err := CreateFileBackend(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(Options{Scheme: WBox, BlockSize: 4096, Backend: fb})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := st.Load(GenerateTwoLevel(500))
	if err != nil {
		t.Fatal(err)
	}
	span, err := st.LookupSpan(doc.Elems[250])
	if err != nil {
		t.Fatal(err)
	}
	if span.Start >= span.End {
		t.Fatalf("bad span %v", span)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicCachedLookups(t *testing.T) {
	st, err := Open(Options{Scheme: BBox, Caching: CachingLogged, LogK: 32})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := st.Load(GenerateTwoLevel(200))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := st.Cache().NewRef(doc.Elems[100].Start)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.InsertElementBefore(doc.Elems[100].Start); err != nil {
		t.Fatal(err)
	}
	got, _, err := st.Cache().Lookup(&ref)
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.Lookup(ref.LID)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("cache %d != direct %d", got, want)
	}
}
